//! Inverted dropout.

use slime_rng::Rng;

use crate::ndarray::NdArray;
use crate::tensor::{Op, Tensor};

/// Inverted dropout: zero each element with probability `p` and scale the
/// survivors by `1/(1-p)` so expectations are preserved.
///
/// Dropout is the source of the "model-level augmentation" of the paper's
/// contrastive task (Section III-E): passing the same sequence through the
/// network twice with independent dropout masks yields two semantically
/// similar but numerically different views.
///
/// Callers implement eval mode by *not* applying dropout (there is no
/// internal training flag).
pub fn dropout(x: &Tensor, p: f32, rng: &mut impl Rng) -> Tensor {
    assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
    if p == 0.0 {
        // Identity but still a graph node, so callers can rely on a fresh tensor.
        return crate::ops::scale(x, 1.0);
    }
    let keep = 1.0 - p;
    let scale = 1.0 / keep;
    let data = x.data();
    let src = data.data();
    let mut mask = crate::pool::take_filled(x.len(), 0.0);
    let mut out = crate::pool::take_filled(x.len(), 0.0);
    for i in 0..src.len() {
        if rng.gen::<f32>() < keep {
            mask[i] = scale;
            out[i] = src[i] * scale;
        }
    }
    let shape = x.shape();
    drop(data);
    Tensor::from_op(
        NdArray::from_vec(shape.clone(), out),
        vec![x.clone()],
        Box::new(DropoutOp {
            mask: NdArray::from_vec(shape, mask),
        }),
    )
}

struct DropoutOp {
    mask: NdArray,
}

impl Op for DropoutOp {
    fn backward(&self, grad: &NdArray, _parents: &[Tensor]) -> Vec<Option<NdArray>> {
        vec![Some(grad.zip_map(&self.mask, |g, m| g * m))]
    }
    fn name(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::sum_all;
    use slime_rng::rngs::StdRng;
    use slime_rng::SeedableRng;

    #[test]
    fn zero_p_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::param(NdArray::from_vec(vec![4], vec![1., 2., 3., 4.]));
        let y = dropout(&x, 0.0, &mut rng);
        assert_eq!(y.value().data(), x.value().data());
    }

    #[test]
    fn survivors_are_scaled_and_grad_matches_mask() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::param(NdArray::ones(vec![1000]));
        let y = dropout(&x, 0.5, &mut rng);
        let vals = y.value();
        let kept = vals.data().iter().filter(|&&v| v != 0.0).count();
        // Expect roughly half kept.
        assert!((300..700).contains(&kept), "kept {kept}");
        for &v in vals.data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
        sum_all(&y).backward();
        let g = x.grad().unwrap();
        for (gv, yv) in g.data().iter().zip(vals.data()) {
            assert_eq!(*gv != 0.0, *yv != 0.0);
        }
    }

    #[test]
    fn expectation_roughly_preserved() {
        let mut rng = StdRng::seed_from_u64(42);
        let x = Tensor::constant(NdArray::ones(vec![10_000]));
        let y = dropout(&x, 0.3, &mut rng);
        let mean = y.value().mean_all();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }
}
