//! Inverted dropout.

use slime_rng::Rng;

use crate::ndarray::NdArray;
use crate::tensor::{Op, Tensor};

/// Inverted dropout: zero each element with probability `p` and scale the
/// survivors by `1/(1-p)` so expectations are preserved.
///
/// Dropout is the source of the "model-level augmentation" of the paper's
/// contrastive task (Section III-E): passing the same sequence through the
/// network twice with independent dropout masks yields two semantically
/// similar but numerically different views.
///
/// Two samplers, both deterministic under a seeded `rng`:
///
/// * **hashed** (fused fast path, [`crate::simd::fuse::enabled`]): one
///   `u64` drawn from `rng` seeds a counter-based per-index hash
///   ([`Kernels::dropout_mask`](crate::simd::Kernels)) — branchless, 8-lane
///   vectorizable, and bitwise identical across SIMD backends;
/// * **sequential** (`--no-fuse`): the historical draw-per-element walk,
///   kept bit-exact so the escape hatch reproduces pre-fusion results.
///
/// The sampler is fixed at construction, so a step plan replays whichever
/// sampler traced the capture step regardless of the current gate.
///
/// Callers implement eval mode by *not* applying dropout (there is no
/// internal training flag).
pub fn dropout(x: &Tensor, p: f32, rng: &mut impl Rng) -> Tensor {
    let _prof = super::fwd_prof("dropout", x.len());
    assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
    if p == 0.0 {
        // Identity but still a graph node, so callers can rely on a fresh tensor.
        return crate::ops::scale(x, 1.0);
    }
    let keep = 1.0 - p;
    let scale = 1.0 / keep;
    let hashed = crate::simd::fuse::enabled();
    let data = x.data();
    let src = data.data();
    let mut mask = crate::pool::take_filled(x.len(), 0.0);
    let mut out = crate::pool::take_filled(x.len(), 0.0);
    fill_masked(hashed, keep, scale, rng, src, &mut mask, &mut out);
    let shape = x.shape();
    drop(data);
    Tensor::from_op(
        NdArray::from_vec(shape.clone(), out),
        vec![x.clone()],
        Box::new(DropoutOp {
            keep,
            scale,
            hashed,
            mask: std::cell::RefCell::new(NdArray::from_vec(shape, mask)),
        }),
    )
}

/// Shared mask body: one pass writing `mask` (0 or `scale`) and
/// `out = src * mask`, consuming `rng` per the selected sampler.
fn fill_masked(
    hashed: bool,
    keep: f32,
    scale: f32,
    rng: &mut impl Rng,
    src: &[f32],
    mask: &mut [f32],
    out: &mut [f32],
) {
    debug_assert!(
        mask.len() == src.len() && out.len() == src.len(),
        "mask and out match the source length"
    );
    if hashed {
        let seed = rng.gen::<u64>();
        (crate::simd::kernels().dropout_mask)(seed, keep, scale, src, mask, out);
    } else {
        for i in 0..src.len() {
            if rng.gen::<f32>() < keep {
                mask[i] = scale;
                out[i] = src[i] * scale;
            }
        }
    }
}

struct DropoutOp {
    keep: f32,
    scale: f32,
    hashed: bool,
    mask: std::cell::RefCell<NdArray>,
}

impl Op for DropoutOp {
    fn backward(&self, grad: &NdArray, _parents: &[Tensor]) -> Vec<Option<NdArray>> {
        vec![Some(grad.zip_map(&self.mask.borrow(), |g, m| g * m))]
    }
    fn name(&self) -> &'static str {
        "dropout"
    }
    fn replayable(&self) -> bool {
        true
    }
    // Re-draw the mask from the replay RNG with the exact sampler the eager
    // constructor ran, so a replayed step consumes the same draw sequence
    // (and produces the same mask) as re-tracing would.
    fn replay(&self, parents: &[Tensor], ctx: &mut crate::plan::ReplayCtx) -> Option<NdArray> {
        let _prof = super::fwd_prof("dropout", parents[0].len());
        debug_assert_eq!(parents.len(), 1, "dropout has one parent");
        let rng = ctx.rng.as_deref_mut()?;
        let data = parents[0].data();
        let src = data.data();
        let mut mask = crate::pool::take_filled(src.len(), 0.0);
        let mut out = crate::pool::take_filled(src.len(), 0.0);
        fill_masked(
            self.hashed,
            self.keep,
            self.scale,
            rng,
            src,
            &mut mask,
            &mut out,
        );
        let shape = data.shape().to_vec();
        drop(data);
        *self.mask.borrow_mut() = NdArray::from_vec(shape.clone(), mask);
        Some(NdArray::from_vec(shape, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::sum_all;
    use slime_rng::rngs::StdRng;
    use slime_rng::SeedableRng;

    #[test]
    fn zero_p_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::param(NdArray::from_vec(vec![4], vec![1., 2., 3., 4.]));
        let y = dropout(&x, 0.0, &mut rng);
        assert_eq!(y.value().data(), x.value().data());
    }

    #[test]
    fn survivors_are_scaled_and_grad_matches_mask() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::param(NdArray::ones(vec![1000]));
        let y = dropout(&x, 0.5, &mut rng);
        let vals = y.value();
        let kept = vals.data().iter().filter(|&&v| v != 0.0).count();
        // Expect roughly half kept.
        assert!((300..700).contains(&kept), "kept {kept}");
        for &v in vals.data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
        sum_all(&y).backward();
        let g = x.grad().unwrap();
        for (gv, yv) in g.data().iter().zip(vals.data()) {
            assert_eq!(*gv != 0.0, *yv != 0.0);
        }
    }

    #[test]
    fn expectation_roughly_preserved() {
        let mut rng = StdRng::seed_from_u64(42);
        let x = Tensor::constant(NdArray::ones(vec![10_000]));
        let y = dropout(&x, 0.3, &mut rng);
        let mean = y.value().mean_all();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn hashed_sampler_preserves_expectation_and_seed_determinism() {
        let was = crate::simd::fuse::enabled();
        crate::simd::fuse::set_enabled(true);
        let x = Tensor::constant(NdArray::ones(vec![10_000]));
        let mut rng = StdRng::seed_from_u64(42);
        let y = dropout(&x, 0.3, &mut rng);
        let mean = y.value().mean_all();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Same rng state -> same seed draw -> identical mask.
        let mut rng2 = StdRng::seed_from_u64(42);
        let y2 = dropout(&x, 0.3, &mut rng2);
        assert_eq!(y.value().data(), y2.value().data());
        // Different state -> a different mask (two contrastive views).
        let y3 = dropout(&x, 0.3, &mut rng2);
        assert_ne!(y2.value().data(), y3.value().data());
        crate::simd::fuse::set_enabled(was);
    }

    #[test]
    fn samplers_follow_the_fuse_gate() {
        // Sequential consumes one draw per element; hashed consumes one u64
        // (two PCG outputs) total — observable through the rng state.
        let was = crate::simd::fuse::enabled();
        let x = Tensor::constant(NdArray::ones(vec![100]));
        crate::simd::fuse::set_enabled(false);
        let mut rng = StdRng::seed_from_u64(7);
        let _ = dropout(&x, 0.5, &mut rng);
        let mut reference = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let _ = reference.gen::<f32>();
        }
        assert_eq!(rng.gen::<u32>(), reference.gen::<u32>());
        crate::simd::fuse::set_enabled(true);
        let mut rng = StdRng::seed_from_u64(7);
        let _ = dropout(&x, 0.5, &mut rng);
        let mut reference = StdRng::seed_from_u64(7);
        let _ = reference.gen::<u64>();
        assert_eq!(rng.gen::<u32>(), reference.gen::<u32>());
        crate::simd::fuse::set_enabled(was);
    }
}
