//! Classification losses.

use crate::ndarray::NdArray;
use crate::tensor::{Op, Tensor};

/// Mean softmax cross-entropy of `logits` (`[B, V]`) against integer
/// `targets`.
///
/// This is the recommendation objective of the paper's Eq. 31–32 (softmax
/// over the whole item set, negative log-likelihood of the ground-truth
/// item) and also the InfoNCE objective of Eq. 34 when `logits` are
/// similarity scores and `targets` index the positive column.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> Tensor {
    let shape = logits.shape();
    assert_eq!(shape.len(), 2, "cross_entropy expects [B, V] logits");
    let (b, v) = (shape[0], shape[1]);
    assert_eq!(targets.len(), b, "one target per row");
    let data = logits.data();
    let src = data.data();
    let mut loss = 0.0f64;
    let mut softmax = vec![0.0f32; b * v];
    for r in 0..b {
        let row = &src[r * v..(r + 1) * v];
        let t = targets[r];
        assert!(t < v, "target {t} out of range {v}");
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (o, &x) in softmax[r * v..(r + 1) * v].iter_mut().zip(row) {
            let e = (x - max).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for o in softmax[r * v..(r + 1) * v].iter_mut() {
            *o *= inv;
        }
        let lse = max + sum.ln();
        loss += (lse - row[t]) as f64;
    }
    drop(data);
    let loss = (loss / b as f64) as f32;
    Tensor::from_op(
        NdArray::scalar(loss),
        vec![logits.clone()],
        Box::new(CrossEntropyOp {
            softmax: NdArray::from_vec(vec![b, v], softmax),
            targets: targets.to_vec(),
        }),
    )
}

struct CrossEntropyOp {
    softmax: NdArray,
    targets: Vec<usize>,
}

impl Op for CrossEntropyOp {
    fn backward(&self, grad: &NdArray, _parents: &[Tensor]) -> Vec<Option<NdArray>> {
        let g = grad.scalar_value();
        let shape = self.softmax.shape().to_vec();
        let (b, v) = (shape[0], shape[1]);
        let scale = g / b as f32;
        let mut dx = self.softmax.data().to_vec();
        for (r, &t) in self.targets.iter().enumerate() {
            dx[r * v + t] -= 1.0;
        }
        for d in dx.iter_mut() {
            *d *= scale;
        }
        vec![Some(NdArray::from_vec(shape, dx))]
    }
    fn name(&self) -> &'static str {
        "cross_entropy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_v() {
        let logits = Tensor::param(NdArray::zeros(vec![2, 4]));
        let loss = cross_entropy(&logits, &[0, 3]);
        assert!((loss.item() - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_logits_give_near_zero_loss() {
        let mut data = vec![0.0f32; 8];
        data[1] = 50.0; // row 0 target 1
        data[4 + 2] = 50.0; // row 1 target 2
        let logits = Tensor::param(NdArray::from_vec(vec![2, 4], data));
        let loss = cross_entropy(&logits, &[1, 2]);
        assert!(loss.item() < 1e-4);
    }

    #[test]
    fn gradient_is_softmax_minus_onehot_over_b() {
        let logits = Tensor::param(NdArray::zeros(vec![1, 2]));
        cross_entropy(&logits, &[0]).backward();
        let g = logits.grad().unwrap();
        assert!((g.data()[0] + 0.5).abs() < 1e-6);
        assert!((g.data()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn loss_decreases_with_one_sgd_step() {
        let logits = Tensor::param(NdArray::from_vec(vec![1, 3], vec![0.1, 0.0, -0.1]));
        let before = cross_entropy(&logits, &[2]);
        before.backward();
        let g = logits.grad().unwrap();
        let stepped: Vec<f32> = logits
            .value()
            .data()
            .iter()
            .zip(g.data())
            .map(|(v, gv)| v - 1.0 * gv)
            .collect();
        let after = cross_entropy(&Tensor::param(NdArray::from_vec(vec![1, 3], stepped)), &[2]);
        assert!(after.item() < before.item());
    }
}
