//! Classification losses.

use crate::ndarray::NdArray;
use crate::tensor::{Op, Tensor};

/// Logit elements per parallel chunk of the cross-entropy row loop. Chunking
/// depends only on the `[B, V]` shape, so the per-chunk `f64` partial losses
/// — and their in-order fold — are bitwise identical at any thread count.
const CE_CHUNK_ELEMS: usize = 1 << 16;

fn rows_per_chunk(v: usize) -> usize {
    (CE_CHUNK_ELEMS / v.max(1)).max(1)
}

/// Mean softmax cross-entropy of `logits` (`[B, V]`) against integer
/// `targets`.
///
/// This is the recommendation objective of the paper's Eq. 31–32 (softmax
/// over the whole item set, negative log-likelihood of the ground-truth
/// item) and also the InfoNCE objective of Eq. 34 when `logits` are
/// similarity scores and `targets` index the positive column.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> Tensor {
    let _prof = super::fwd_prof("cross_entropy", logits.len());
    let shape = logits.shape();
    assert_eq!(shape.len(), 2, "cross_entropy expects [B, V] logits");
    let (b, v) = (shape[0], shape[1]);
    assert_eq!(targets.len(), b, "one target per row");
    for &t in targets {
        assert!(t < v, "target {t} out of range {v}");
    }
    let (softmax, loss) = softmax_and_loss(&logits.data(), targets, b, v);
    Tensor::from_op(
        NdArray::scalar(loss),
        vec![logits.clone()],
        Box::new(CrossEntropyOp {
            softmax: std::cell::RefCell::new(softmax),
            targets: std::cell::RefCell::new(targets.to_vec()),
            slot: crate::plan::slot_of(targets),
        }),
    )
}

/// Shared forward body (eager construction and plan replay): row-parallel
/// softmax + loss. Each chunk writes its own softmax rows and returns an
/// f64 partial loss; partials are folded in chunk order.
fn softmax_and_loss(data: &NdArray, targets: &[usize], b: usize, v: usize) -> (NdArray, f32) {
    let src = data.data();
    debug_assert!(
        src.len() == b * v && targets.len() == b,
        "logits are [b, v] with one target per row"
    );
    let mut softmax = crate::pool::take_filled(b * v, 0.0);
    let loss = {
        let w = slime_par::UnsafeSlice::new(&mut softmax);
        slime_par::parallel_map_reduce(
            b,
            rows_per_chunk(v),
            |r0, r1| {
                // SAFETY: row ranges partition `0..b`, disjoint across chunks.
                let sm = unsafe { w.slice_mut(r0 * v, (r1 - r0) * v) };
                let mut part = 0.0f64;
                for r in r0..r1 {
                    let row = &src[r * v..(r + 1) * v];
                    let out = &mut sm[(r - r0) * v..(r - r0 + 1) * v];
                    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let mut sum = 0.0f32;
                    for (o, &x) in out.iter_mut().zip(row) {
                        let e = (x - max).exp();
                        *o = e;
                        sum += e;
                    }
                    let inv = 1.0 / sum;
                    for o in out.iter_mut() {
                        *o *= inv;
                    }
                    let lse = max + sum.ln();
                    part += (lse - row[targets[r]]) as f64;
                }
                part
            },
            |a, b| a + b,
        )
        .unwrap_or(0.0)
    };
    (
        NdArray::from_vec(vec![b, v], softmax),
        (loss / b as f64) as f32,
    )
}

struct CrossEntropyOp {
    softmax: std::cell::RefCell<NdArray>,
    targets: std::cell::RefCell<Vec<usize>>,
    /// Which per-step buffer the targets came from (for plan rebinding).
    slot: Option<crate::plan::Slot>,
}

impl Op for CrossEntropyOp {
    fn backward(&self, grad: &NdArray, _parents: &[Tensor]) -> Vec<Option<NdArray>> {
        let g = grad.scalar_value();
        let softmax = self.softmax.borrow();
        let shape = softmax.shape().to_vec();
        let (b, v) = (shape[0], shape[1]);
        let targets = self.targets.borrow();
        debug_assert_eq!(targets.len(), b, "one target per softmax row");
        let scale = g / b as f32;
        let sm = softmax.data();
        let targets = &targets[..];
        let mut dx = crate::pool::take_filled(b * v, 0.0);
        {
            let w = slime_par::UnsafeSlice::new(&mut dx);
            slime_par::parallel_for(b, rows_per_chunk(v), |r0, r1| {
                // SAFETY: row ranges partition `0..b`, disjoint across chunks.
                // lint-proof(l8): w[r0 * v .. r1 * v]
                let out = unsafe { w.slice_mut(r0 * v, (r1 - r0) * v) };
                out.copy_from_slice(&sm[r0 * v..r1 * v]);
                for r in r0..r1 {
                    out[(r - r0) * v + targets[r]] -= 1.0;
                }
                for o in out.iter_mut() {
                    *o *= scale;
                }
            });
        }
        vec![Some(NdArray::from_vec(shape, dx))]
    }
    fn name(&self) -> &'static str {
        "cross_entropy"
    }
    fn replayable(&self) -> bool {
        true
    }
    fn bound_slot(&self) -> Option<crate::plan::Slot> {
        self.slot
    }
    fn rebind(&self, data: &[usize]) {
        let mut targets = self.targets.borrow_mut();
        debug_assert_eq!(targets.len(), data.len(), "rebind length");
        targets.clear();
        targets.extend_from_slice(data);
    }
    fn replay(&self, parents: &[Tensor], _ctx: &mut crate::plan::ReplayCtx) -> Option<NdArray> {
        let _prof = super::fwd_prof("cross_entropy", parents[0].len());
        debug_assert_eq!(parents.len(), 1, "cross_entropy has one parent");
        let targets = self.targets.borrow();
        let (b, v) = {
            let s = self.softmax.borrow();
            (s.shape()[0], s.shape()[1])
        };
        let (softmax, loss) = softmax_and_loss(&parents[0].data(), &targets, b, v);
        *self.softmax.borrow_mut() = softmax;
        Some(NdArray::scalar(loss))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_v() {
        let logits = Tensor::param(NdArray::zeros(vec![2, 4]));
        let loss = cross_entropy(&logits, &[0, 3]);
        assert!((loss.item() - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_logits_give_near_zero_loss() {
        let mut data = vec![0.0f32; 8];
        data[1] = 50.0; // row 0 target 1
        data[4 + 2] = 50.0; // row 1 target 2
        let logits = Tensor::param(NdArray::from_vec(vec![2, 4], data));
        let loss = cross_entropy(&logits, &[1, 2]);
        assert!(loss.item() < 1e-4);
    }

    #[test]
    fn gradient_is_softmax_minus_onehot_over_b() {
        let logits = Tensor::param(NdArray::zeros(vec![1, 2]));
        cross_entropy(&logits, &[0]).backward();
        let g = logits.grad().unwrap();
        assert!((g.data()[0] + 0.5).abs() < 1e-6);
        assert!((g.data()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn loss_decreases_with_one_sgd_step() {
        let logits = Tensor::param(NdArray::from_vec(vec![1, 3], vec![0.1, 0.0, -0.1]));
        let before = cross_entropy(&logits, &[2]);
        before.backward();
        let g = logits.grad().unwrap();
        let stepped: Vec<f32> = logits
            .value()
            .data()
            .iter()
            .zip(g.data())
            .map(|(v, gv)| v - 1.0 * gv)
            .collect();
        let after = cross_entropy(&Tensor::param(NdArray::from_vec(vec![1, 3], stepped)), &[2]);
        assert!(after.item() < before.item());
    }
}
