//! Matrix-multiplication ops.
//!
//! Backward passes here never materialize a transpose: the adjoints
//! `dA = G B^T` and `dB = A^T G` route through the transpose-free
//! `matmul2d_nt` / `matmul2d_tn` kernels (and their `bmm` analogues) on the
//! saved *untransposed* operands, cutting one full read+write of each
//! operand per op per step.

use crate::ndarray::NdArray;
use crate::tensor::{Op, Tensor};

/// 2-D matrix multiply `[m,k] x [k,n] -> [m,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let _prof = super::fwd_prof("matmul", a.len());
    let (sa, sb) = (a.shape(), b.shape());
    assert!(
        sa.len() == 2 && sb.len() == 2 && sa[1] == sb[0],
        "matmul: incompatible shapes {sa:?} x {sb:?}"
    );
    let out = a.data().matmul2d(&b.data());
    Tensor::from_op(out, vec![a.clone(), b.clone()], Box::new(MatMulOp))
}

/// Stateless: backward reads the parents' *current* values (correct both
/// eagerly and after a step-plan replay refreshes them in place).
struct MatMulOp;

impl Op for MatMulOp {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) -> Vec<Option<NdArray>> {
        debug_assert_eq!(parents.len(), 2, "matmul has two parents");
        // dA = G B^T ([m,n] x [k,n]^T); dB = A^T G ([m,k]^T x [m,n]).
        let ga = grad.matmul2d_nt(&parents[1].data());
        let gb = parents[0].data().matmul2d_tn(grad);
        vec![Some(ga), Some(gb)]
    }
    fn name(&self) -> &'static str {
        "matmul"
    }
    fn replayable(&self) -> bool {
        true
    }
    fn replay(&self, parents: &[Tensor], _ctx: &mut crate::plan::ReplayCtx) -> Option<NdArray> {
        let _prof = super::fwd_prof("matmul", parents[0].len());
        debug_assert_eq!(parents.len(), 2, "matmul has two parents");
        Some(parents[0].data().matmul2d(&parents[1].data()))
    }
}

/// 2-D matrix multiply against a transposed right operand:
/// `[m,k] x [n,k]^T -> [m,n]`, without ever materializing the transpose.
///
/// This is the full-catalog scoring shape — `repr [B,d] x item_emb [V,d]^T`
/// — and attention-style similarity against a row-major table in general.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let _prof = super::fwd_prof("matmul_nt", a.len());
    let (sa, sb) = (a.shape(), b.shape());
    assert!(
        sa.len() == 2 && sb.len() == 2 && sa[1] == sb[1],
        "matmul_nt: incompatible shapes {sa:?} x {sb:?}^T"
    );
    let out = a.data().matmul2d_nt(&b.data());
    Tensor::from_op(out, vec![a.clone(), b.clone()], Box::new(MatMulNtOp))
}

struct MatMulNtOp;

impl Op for MatMulNtOp {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) -> Vec<Option<NdArray>> {
        debug_assert_eq!(parents.len(), 2, "matmul_nt has two parents");
        // Y = A B^T: dA = G B ([m,n] x [n,k]); dB = G^T A ([m,n]^T x [m,k]).
        let ga = grad.matmul2d(&parents[1].data());
        let gb = grad.matmul2d_tn(&parents[0].data());
        vec![Some(ga), Some(gb)]
    }
    fn name(&self) -> &'static str {
        "matmul_nt"
    }
    fn replayable(&self) -> bool {
        true
    }
    fn replay(&self, parents: &[Tensor], _ctx: &mut crate::plan::ReplayCtx) -> Option<NdArray> {
        let _prof = super::fwd_prof("matmul_nt", parents[0].len());
        debug_assert_eq!(parents.len(), 2, "matmul_nt has two parents");
        Some(parents[0].data().matmul2d_nt(&parents[1].data()))
    }
}

/// Batched matrix multiply `[b,m,k] x [b,k,n] -> [b,m,n]`.
pub fn bmm(a: &Tensor, b: &Tensor) -> Tensor {
    let _prof = super::fwd_prof("bmm", a.len());
    let (sa, sb) = (a.shape(), b.shape());
    assert!(
        sa.len() == 3 && sb.len() == 3 && sa[0] == sb[0] && sa[2] == sb[1],
        "bmm: incompatible shapes {sa:?} x {sb:?}"
    );
    let out = a.data().bmm(&b.data());
    Tensor::from_op(out, vec![a.clone(), b.clone()], Box::new(BmmOp))
}

struct BmmOp;

impl Op for BmmOp {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) -> Vec<Option<NdArray>> {
        debug_assert_eq!(parents.len(), 2, "bmm has two parents");
        // Per plane: dA = G B^T; dB = A^T G — transpose-free as in MatMulOp.
        let ga = grad.bmm_nt(&parents[1].data());
        let gb = parents[0].data().bmm_tn(grad);
        vec![Some(ga), Some(gb)]
    }
    fn name(&self) -> &'static str {
        "bmm"
    }
    fn replayable(&self) -> bool {
        true
    }
    fn replay(&self, parents: &[Tensor], _ctx: &mut crate::plan::ReplayCtx) -> Option<NdArray> {
        let _prof = super::fwd_prof("bmm", parents[0].len());
        debug_assert_eq!(parents.len(), 2, "bmm has two parents");
        Some(parents[0].data().bmm(&parents[1].data()))
    }
}

/// Batched matrix multiply against transposed right operands:
/// `[b,m,k] x [b,n,k]^T -> [b,m,n]`, without materializing the transposes.
///
/// This is attention's `Q K^T`: both operands come out of the projection
/// layers row-major, and the old `permute`-then-`bmm` route copied the full
/// key tensor per layer per step just to feed the `i-k-j` kernel.
pub fn bmm_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let _prof = super::fwd_prof("bmm_nt", a.len());
    let (sa, sb) = (a.shape(), b.shape());
    assert!(
        sa.len() == 3 && sb.len() == 3 && sa[0] == sb[0] && sa[2] == sb[2],
        "bmm_nt: incompatible shapes {sa:?} x {sb:?}^T"
    );
    let out = a.data().bmm_nt(&b.data());
    Tensor::from_op(out, vec![a.clone(), b.clone()], Box::new(BmmNtOp))
}

struct BmmNtOp;

impl Op for BmmNtOp {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) -> Vec<Option<NdArray>> {
        debug_assert_eq!(parents.len(), 2, "bmm_nt has two parents");
        // Per plane: Y = A B^T, so dA = G B and dB = G^T A.
        let ga = grad.bmm(&parents[1].data());
        let gb = grad.bmm_tn(&parents[0].data());
        vec![Some(ga), Some(gb)]
    }
    fn name(&self) -> &'static str {
        "bmm_nt"
    }
    fn replayable(&self) -> bool {
        true
    }
    fn replay(&self, parents: &[Tensor], _ctx: &mut crate::plan::ReplayCtx) -> Option<NdArray> {
        let _prof = super::fwd_prof("bmm_nt", parents[0].len());
        debug_assert_eq!(parents.len(), 2, "bmm_nt has two parents");
        Some(parents[0].data().bmm_nt(&parents[1].data()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::sum_all;

    #[test]
    fn matmul_forward_and_grads() {
        let a = Tensor::param(NdArray::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]));
        let b = Tensor::param(NdArray::from_vec(
            vec![3, 2],
            vec![7., 8., 9., 10., 11., 12.],
        ));
        let y = matmul(&a, &b);
        assert_eq!(y.value().data(), &[58., 64., 139., 154.]);
        sum_all(&y).backward();
        // dA = 1s (2x2) @ B^T: each row = [col-sums of B rows] = [15, 19, 23]
        assert_eq!(a.grad().unwrap().data(), &[15., 19., 23., 15., 19., 23.]);
        // dB = A^T @ 1s: row i = [sum of A col i] repeated
        assert_eq!(b.grad().unwrap().data(), &[5., 5., 7., 7., 9., 9.]);
    }

    #[test]
    fn matmul_nt_matches_matmul_of_transpose() {
        let a = Tensor::param(NdArray::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]));
        // bt is [n, k]; matmul_nt(a, bt) == matmul(a, bt^T).
        let bt = Tensor::param(NdArray::from_vec(
            vec![2, 3],
            vec![7., 9., 11., 8., 10., 12.],
        ));
        let y = matmul_nt(&a, &bt);
        assert_eq!(y.value().data(), &[58., 64., 139., 154.]);
        sum_all(&y).backward();
        assert_eq!(a.grad().unwrap().data(), &[15., 19., 23., 15., 19., 23.]);
        // dB^T = (A^T @ 1s)^T: row j of bt's grad = col-sums of A = [5,7,9]
        assert_eq!(bt.grad().unwrap().data(), &[5., 7., 9., 5., 7., 9.]);
    }

    #[test]
    fn bmm_batches_are_independent() {
        let a = Tensor::param(NdArray::from_vec(vec![2, 1, 2], vec![1., 2., 3., 4.]));
        let b = Tensor::param(NdArray::from_vec(vec![2, 2, 1], vec![5., 6., 7., 8.]));
        let y = bmm(&a, &b);
        assert_eq!(y.value().data(), &[17., 53.]);
        sum_all(&y).backward();
        assert_eq!(a.grad().unwrap().data(), &[5., 6., 7., 8.]);
        assert_eq!(b.grad().unwrap().data(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn bmm_nt_matches_bmm_of_transpose() {
        let a = Tensor::param(NdArray::from_vec(vec![2, 1, 2], vec![1., 2., 3., 4.]));
        // bt planes are [n, k] = [2, 2].
        let bt = Tensor::param(NdArray::from_vec(
            vec![2, 2, 2],
            vec![5., 7., 6., 8., 1., 0., 0., 1.],
        ));
        let y = bmm_nt(&a, &bt);
        assert_eq!(
            y.value().data(),
            a.value().bmm(&bt.value().transpose_last2()).data()
        );
        sum_all(&y).backward();
        let a2 = Tensor::param(a.value());
        let b2 = Tensor::param(bt.value().transpose_last2());
        sum_all(&bmm(&a2, &b2)).backward();
        assert_eq!(a.grad().unwrap().data(), a2.grad().unwrap().data());
        assert_eq!(
            bt.grad().unwrap().data(),
            b2.grad().unwrap().transpose_last2().data()
        );
    }
}
