//! Matrix-multiplication ops.

use crate::ndarray::NdArray;
use crate::tensor::{Op, Tensor};

/// 2-D matrix multiply `[m,k] x [k,n] -> [m,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (sa, sb) = (a.shape(), b.shape());
    assert!(
        sa.len() == 2 && sb.len() == 2 && sa[1] == sb[0],
        "matmul: incompatible shapes {sa:?} x {sb:?}"
    );
    let out = a.data().matmul2d(&b.data());
    Tensor::from_op(
        out,
        vec![a.clone(), b.clone()],
        Box::new(MatMulOp {
            a: a.value(),
            b: b.value(),
        }),
    )
}

struct MatMulOp {
    a: NdArray,
    b: NdArray,
}

impl Op for MatMulOp {
    fn backward(&self, grad: &NdArray, _parents: &[Tensor]) -> Vec<Option<NdArray>> {
        // dA = G B^T ; dB = A^T G
        let ga = grad.matmul2d(&self.b.transpose_last2());
        let gb = self.a.transpose_last2().matmul2d(grad);
        vec![Some(ga), Some(gb)]
    }
    fn name(&self) -> &'static str {
        "matmul"
    }
}

/// Batched matrix multiply `[b,m,k] x [b,k,n] -> [b,m,n]`.
pub fn bmm(a: &Tensor, b: &Tensor) -> Tensor {
    let (sa, sb) = (a.shape(), b.shape());
    assert!(
        sa.len() == 3 && sb.len() == 3 && sa[0] == sb[0] && sa[2] == sb[1],
        "bmm: incompatible shapes {sa:?} x {sb:?}"
    );
    let out = a.data().bmm(&b.data());
    Tensor::from_op(
        out,
        vec![a.clone(), b.clone()],
        Box::new(BmmOp {
            a: a.value(),
            b: b.value(),
        }),
    )
}

struct BmmOp {
    a: NdArray,
    b: NdArray,
}

impl Op for BmmOp {
    fn backward(&self, grad: &NdArray, _parents: &[Tensor]) -> Vec<Option<NdArray>> {
        let ga = grad.bmm(&self.b.transpose_last2());
        let gb = self.a.transpose_last2().bmm(grad);
        vec![Some(ga), Some(gb)]
    }
    fn name(&self) -> &'static str {
        "bmm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::sum_all;

    #[test]
    fn matmul_forward_and_grads() {
        let a = Tensor::param(NdArray::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]));
        let b = Tensor::param(NdArray::from_vec(
            vec![3, 2],
            vec![7., 8., 9., 10., 11., 12.],
        ));
        let y = matmul(&a, &b);
        assert_eq!(y.value().data(), &[58., 64., 139., 154.]);
        sum_all(&y).backward();
        // dA = 1s (2x2) @ B^T: each row = [col-sums of B rows] = [15, 19, 23]
        assert_eq!(a.grad().unwrap().data(), &[15., 19., 23., 15., 19., 23.]);
        // dB = A^T @ 1s: row i = [sum of A col i] repeated
        assert_eq!(b.grad().unwrap().data(), &[5., 5., 7., 7., 9., 9.]);
    }

    #[test]
    fn bmm_batches_are_independent() {
        let a = Tensor::param(NdArray::from_vec(vec![2, 1, 2], vec![1., 2., 3., 4.]));
        let b = Tensor::param(NdArray::from_vec(vec![2, 2, 1], vec![5., 6., 7., 8.]));
        let y = bmm(&a, &b);
        assert_eq!(y.value().data(), &[17., 53.]);
        sum_all(&y).backward();
        assert_eq!(a.grad().unwrap().data(), &[5., 6., 7., 8.]);
        assert_eq!(b.grad().unwrap().data(), &[1., 2., 3., 4.]);
    }
}
