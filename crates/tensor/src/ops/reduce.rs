//! Reduction ops.

use crate::ndarray::{numel, NdArray};
use crate::tensor::{Op, Tensor};

/// Sum of all elements (scalar output, shape `[]`).
pub fn sum_all(x: &Tensor) -> Tensor {
    let out = NdArray::scalar(x.data().sum_all());
    Tensor::from_op(
        out,
        vec![x.clone()],
        Box::new(FullReduceOp {
            shape: x.shape(),
            scale: 1.0,
            name: "sum_all",
        }),
    )
}

/// Mean of all elements (scalar output).
pub fn mean_all(x: &Tensor) -> Tensor {
    let n = x.len().max(1);
    let out = NdArray::scalar(x.data().mean_all());
    Tensor::from_op(
        out,
        vec![x.clone()],
        Box::new(FullReduceOp {
            shape: x.shape(),
            scale: 1.0 / n as f32,
            name: "mean_all",
        }),
    )
}

struct FullReduceOp {
    shape: Vec<usize>,
    scale: f32,
    name: &'static str,
}

impl Op for FullReduceOp {
    fn backward(&self, grad: &NdArray, _parents: &[Tensor]) -> Vec<Option<NdArray>> {
        let g = grad.scalar_value() * self.scale;
        vec![Some(NdArray::full(self.shape.clone(), g))]
    }
    fn name(&self) -> &'static str {
        self.name
    }
}

/// Sum over `axis`, removing it.
pub fn sum_axis(x: &Tensor, axis: usize) -> Tensor {
    let out = x.data().sum_axis(axis);
    Tensor::from_op(
        out,
        vec![x.clone()],
        Box::new(AxisReduceOp {
            shape: x.shape(),
            axis,
            scale: 1.0,
            name: "sum_axis",
        }),
    )
}

/// Mean over `axis`, removing it.
pub fn mean_axis(x: &Tensor, axis: usize) -> Tensor {
    debug_assert!(axis < x.shape().len(), "mean_axis: axis out of range");
    let out = x.data().mean_axis(axis);
    let d = x.shape()[axis] as f32;
    Tensor::from_op(
        out,
        vec![x.clone()],
        Box::new(AxisReduceOp {
            shape: x.shape(),
            axis,
            scale: 1.0 / d,
            name: "mean_axis",
        }),
    )
}

struct AxisReduceOp {
    shape: Vec<usize>,
    axis: usize,
    scale: f32,
    name: &'static str,
}

impl Op for AxisReduceOp {
    fn backward(&self, grad: &NdArray, _parents: &[Tensor]) -> Vec<Option<NdArray>> {
        // Broadcast the reduced gradient back along the removed axis.
        let outer: usize = self.shape[..self.axis].iter().product();
        let mid = self.shape[self.axis];
        let inner: usize = self.shape[self.axis + 1..].iter().product();
        let gdata = grad.data();
        debug_assert_eq!(gdata.len(), outer * inner, "grad is the reduced shape");
        let mut out = crate::pool::take_filled(numel(&self.shape), 0.0);
        for o in 0..outer {
            let src = &gdata[o * inner..(o + 1) * inner];
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                for (d, s) in out[base..base + inner].iter_mut().zip(src) {
                    *d = s * self.scale;
                }
            }
        }
        vec![Some(NdArray::from_vec(self.shape.clone(), out))]
    }
    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean_all() {
        let x = Tensor::param(NdArray::from_vec(vec![2, 2], vec![1., 2., 3., 4.]));
        let s = sum_all(&x);
        assert_eq!(s.item(), 10.0);
        s.backward();
        assert_eq!(x.grad().unwrap().data(), &[1.; 4]);
        x.zero_grad();
        let m = mean_all(&x);
        assert_eq!(m.item(), 2.5);
        m.backward();
        assert_eq!(x.grad().unwrap().data(), &[0.25; 4]);
    }

    #[test]
    fn axis_reductions_and_grads() {
        let x = Tensor::param(NdArray::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]));
        let s = sum_axis(&x, 0);
        assert_eq!(s.value().data(), &[5., 7., 9.]);
        sum_all(&s).backward();
        assert_eq!(x.grad().unwrap().data(), &[1.; 6]);
        x.zero_grad();
        let m = mean_axis(&x, 1);
        assert_eq!(m.value().data(), &[2., 5.]);
        sum_all(&m).backward();
        for g in x.grad().unwrap().data() {
            assert!((g - 1.0 / 3.0).abs() < 1e-6);
        }
    }
}
