//! Softmax and log-softmax over the last dimension.

use crate::ndarray::NdArray;
use crate::tensor::{Op, Tensor};

/// Numerically-stable softmax over the last dimension.
pub fn softmax(x: &Tensor) -> Tensor {
    let _prof = super::fwd_prof("softmax", x.len());
    let out = softmax_forward(&x.data());
    let saved = out.clone();
    Tensor::from_op(out, vec![x.clone()], Box::new(SoftmaxOp { y: saved }))
}

pub(crate) fn softmax_forward(x: &NdArray) -> NdArray {
    let shape = x.shape().to_vec();
    assert!(!shape.is_empty(), "softmax needs >= 1 dim");
    let d = shape[shape.len() - 1];
    let rows = x.len() / d.max(1);
    let src = x.data();
    let mut out = crate::pool::take_filled(x.len(), 0.0);
    let k = crate::simd::kernels();
    for r in 0..rows {
        let row = &src[r * d..(r + 1) * d];
        let dst = &mut out[r * d..(r + 1) * d];
        let max = (k.row_max)(row);
        let sum = (k.exp_shift_sum)(row, max, dst);
        (k.scale_inplace)(dst, 1.0 / sum);
    }
    NdArray::from_vec(shape, out)
}

struct SoftmaxOp {
    y: NdArray,
}

impl Op for SoftmaxOp {
    fn backward(&self, grad: &NdArray, _parents: &[Tensor]) -> Vec<Option<NdArray>> {
        // dx = y * (g - sum(g * y, last))
        // lint-allow(panic): y comes from softmax_forward, which asserts a non-empty shape
        let d = *self.y.shape().last().unwrap();
        let rows = self.y.len() / d;
        let y = self.y.data();
        let g = grad.data();
        debug_assert_eq!(g.len(), self.y.len(), "grad matches saved output");
        let mut out = crate::pool::take_filled(self.y.len(), 0.0);
        let k = crate::simd::kernels();
        for r in 0..rows {
            let yr = &y[r * d..(r + 1) * d];
            let gr = &g[r * d..(r + 1) * d];
            let dot = (k.dot)(yr, gr);
            (k.softmax_bwd_row)(yr, gr, dot, &mut out[r * d..(r + 1) * d]);
        }
        vec![Some(NdArray::from_vec(self.y.shape().to_vec(), out))]
    }
    fn name(&self) -> &'static str {
        "softmax"
    }
}

/// Numerically-stable log-softmax over the last dimension.
pub fn log_softmax(x: &Tensor) -> Tensor {
    let _prof = super::fwd_prof("log_softmax", x.len());
    let shape = x.shape();
    assert!(!shape.is_empty(), "log_softmax needs >= 1 dim");
    let d = shape[shape.len() - 1];
    let rows = x.len() / d.max(1);
    let data = x.data();
    let src = data.data();
    let mut out = crate::pool::take_filled(x.len(), 0.0);
    let k = crate::simd::kernels();
    for r in 0..rows {
        let row = &src[r * d..(r + 1) * d];
        let dst = &mut out[r * d..(r + 1) * d];
        let max = (k.row_max)(row);
        // The exponentials land in `dst` as scratch and are overwritten by
        // the shift below; only their sum feeds the result.
        let lse = max + (k.exp_shift_sum)(row, max, dst).ln();
        (k.sub_scalar)(row, lse, dst);
    }
    drop(data);
    let out = NdArray::from_vec(shape, out);
    let softmax = out.map(f32::exp);
    Tensor::from_op(out, vec![x.clone()], Box::new(LogSoftmaxOp { softmax }))
}

struct LogSoftmaxOp {
    softmax: NdArray,
}

impl Op for LogSoftmaxOp {
    fn backward(&self, grad: &NdArray, _parents: &[Tensor]) -> Vec<Option<NdArray>> {
        // dx = g - softmax * sum(g, last)
        // lint-allow(panic): softmax is exp of the forward output, whose shape is asserted non-empty
        let d = *self.softmax.shape().last().unwrap();
        let rows = self.softmax.len() / d;
        let s = self.softmax.data();
        let g = grad.data();
        debug_assert_eq!(g.len(), self.softmax.len(), "grad matches saved softmax");
        let mut out = crate::pool::take_filled(self.softmax.len(), 0.0);
        for r in 0..rows {
            let gr = &g[r * d..(r + 1) * d];
            let sr = &s[r * d..(r + 1) * d];
            let gsum: f32 = gr.iter().sum();
            for ((o, &gv), &sv) in out[r * d..(r + 1) * d].iter_mut().zip(gr).zip(sr) {
                *o = gv - sv * gsum;
            }
        }
        vec![Some(NdArray::from_vec(self.softmax.shape().to_vec(), out))]
    }
    fn name(&self) -> &'static str {
        "log_softmax"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::sum_all;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::constant(NdArray::from_vec(vec![2, 3], vec![1., 2., 3., -1., 0., 1.]));
        let y = softmax(&x).value();
        for r in 0..2 {
            let s: f32 = y.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Monotone in logits.
        assert!(y.data()[0] < y.data()[1] && y.data()[1] < y.data()[2]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::constant(NdArray::from_vec(vec![3], vec![1., 2., 3.]));
        let b = Tensor::constant(NdArray::from_vec(vec![3], vec![1001., 1002., 1003.]));
        let ya = softmax(&a).value();
        let yb = softmax(&b).value();
        for (u, v) in ya.data().iter().zip(yb.data()) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = Tensor::constant(NdArray::from_vec(vec![4], vec![0.5, -1.0, 2.0, 0.0]));
        let ls = log_softmax(&x).value();
        let s = softmax(&x).value();
        for (a, b) in ls.data().iter().zip(s.data()) {
            assert!((a - b.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_grad_sums_to_zero_per_row() {
        // d(sum softmax)/dx = 0 because rows always sum to 1.
        let x = Tensor::param(NdArray::from_vec(vec![1, 3], vec![0.3, -0.2, 1.0]));
        sum_all(&softmax(&x)).backward();
        let g = x.grad().unwrap();
        let s: f32 = g.data().iter().sum();
        assert!(s.abs() < 1e-5, "grad sum {s}");
    }
}
