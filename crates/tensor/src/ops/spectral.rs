//! The fused frequency-domain filter op at the heart of SLIME4Rec.
//!
//! Forward (paper Eqs. 12, 21, 25–27):
//!
//! ```text
//! X        = rfft(x)                          x: [B, N, D], X: [B, M, D] complex, M = N/2+1
//! F[k,c]   = sum_i coef_i * mask_i[k] * W_i[k,c]    (learnable complex filters W_i)
//! Y[k,c]   = X[k,c] * F[k,c]                  (elementwise complex product)
//! y        = irfft(Y)                         y: [B, N, D] real
//! ```
//!
//! With two branches — the Dynamic Frequency Selection filter at coefficient
//! `1 - gamma` and the Static Frequency Split filter at `gamma` — this is
//! exactly the paper's filter mixer. With one all-ones mask branch it is
//! FMLP-Rec's global filter.
//!
//! Backward (derived from the adjoints of the real FFT pair; all verified by
//! finite differences in `tests/gradcheck.rs`):
//!
//! ```text
//! G[b,k,c]     = (c_k / N) * rfft(grad_y[b,:,c])[k]   c_k = 1 at k = 0 and k = N/2 (even N), else 2
//!                with Im(G) zeroed at k = 0 and the even-N Nyquist bin
//! grad_X       = G * conj(F)
//! grad_W_i     = coef_i * mask_i[k] * sum_b G * conj(X)
//! grad_x[b,:,c]= Re( unnormalized-inverse-FFT( zero-pad(grad_X[b,:,c], N) ) )
//! ```

use slime_fft::{with_cached_plan, Complex32};
use slime_par::UnsafeSlice;

use crate::ndarray::NdArray;
use crate::tensor::{Op, Tensor};

/// FFT points per parallel task: each chunk covers roughly this many time
/// samples' worth of (batch, channel) transforms. A pure function of the
/// shape, so the chunk grid — and therefore the result bits — never depend
/// on the thread count.
const FFT_POINTS_PER_CHUNK: usize = 4096;

fn pairs_per_chunk(n: usize) -> usize {
    (FFT_POINTS_PER_CHUNK / n.max(1)).max(1)
}

/// Sequence lengths up to this run the rfft/irfft pair as small matmuls
/// against cached trig tables instead of per-(batch, channel) FFTs.
///
/// At recommendation lengths (`max_len` ~ 50) the transform is a `[M, N]`
/// contraction with `M = N/2 + 1` ~ 26 rows: the blocked `i-k-j` matmul
/// kernel streams it at vector width, while Bluestein's algorithm (needed
/// for non-power-of-two `N`) costs two length-128 complex FFTs *and a
/// scratch allocation* per transform — and one `[B, N, D]` pass runs
/// `B * D` of them. The matmul path is O(N^2) per pair versus the FFT's
/// O(N log N), so long sequences stay on the FFT path.
const DFT_MATMUL_MAX_N: usize = 128;

/// Cached rfft/irfft coefficient tables for one sequence length.
///
/// With `theta(k, t) = 2 pi (k * t mod n) / n` (reduced mod `n` in f64 so
/// the angle stays accurate) and the irfft fold weights `c_k / n`
/// (`c_k = 1` at DC and the even-`n` Nyquist bin, else 2):
///
/// * `cre[k * n + t] =  cos(theta)`, `cim[k * n + t] = -sin(theta)`:
///   `X = rfft(x)` is `Xre = cre @ x`, `Xim = cim @ x` per `[N, D]` plane.
/// * `dre[t * m + k] = (c_k / n) cos(theta)`, `dim[t * m + k] =
///   -(c_k / n) sin(theta)`: `y = irfft(Y)` is `dre @ Yre + dim @ Yim`.
///   The `dim` columns at DC and the even-`n` Nyquist bin are exactly
///   zero — that *is* the conjugate-symmetry projection the FFT path
///   applies by zeroing those imaginary parts.
///
/// The backward transforms are the transposes of these same tables (see
/// `SpectralOp::backward`), which the `matmul_tn_rows` kernel reads in
/// place.
struct DftTables {
    cre: Vec<f32>,
    cim: Vec<f32>,
    dre: Vec<f32>,
    dim: Vec<f32>,
}

impl DftTables {
    fn new(n: usize) -> DftTables {
        debug_assert!(n >= 1, "DFT tables need a non-empty signal");
        let m = n / 2 + 1;
        let mut cre = vec![0.0f32; m * n];
        let mut cim = vec![0.0f32; m * n];
        let mut dre = vec![0.0f32; n * m];
        let mut dim = vec![0.0f32; n * m];
        for k in 0..m {
            let ck = if k == 0 || (n % 2 == 0 && k == m - 1) {
                1.0
            } else {
                2.0
            };
            let fold = ck / n as f64;
            // Imaginary parts of the DC and even-n Nyquist bins are
            // discarded by irfft; their fold columns are exactly zero.
            let im_dropped = k == 0 || (n % 2 == 0 && k == m - 1);
            for t in 0..n {
                let theta = 2.0 * std::f64::consts::PI * ((k * t) % n) as f64 / n as f64;
                let (sin, cos) = theta.sin_cos();
                cre[k * n + t] = cos as f32;
                cim[k * n + t] = -sin as f32;
                dre[t * m + k] = (fold * cos) as f32;
                dim[t * m + k] = if im_dropped {
                    0.0
                } else {
                    (-fold * sin) as f32
                };
            }
        }
        DftTables { cre, cim, dre, dim }
    }
}

std::thread_local! {
    static DFT_TABLES: std::cell::RefCell<std::collections::HashMap<usize, std::rc::Rc<DftTables>>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
}

/// Run `f` with the cached tables for length `n`, building them on first
/// use (a few KiB per length; lengths in a process are few).
fn with_dft_tables<R>(n: usize, f: impl FnOnce(&DftTables) -> R) -> R {
    let tables = DFT_TABLES.with(|cache| {
        std::rc::Rc::clone(
            cache
                .borrow_mut()
                .entry(n)
                .or_insert_with(|| std::rc::Rc::new(DftTables::new(n))),
        )
    });
    f(&tables)
}

/// One learnable filter branch of the mixer.
#[derive(Clone)]
pub struct SpectralBranch {
    /// Real part of the complex filter, shape `[M, D]`.
    pub w_re: Tensor,
    /// Imaginary part of the complex filter, shape `[M, D]`.
    pub w_im: Tensor,
    /// Frequency indicator window `sigma[k]` (paper Eq. 15/16), length `M`.
    pub mask: Vec<f32>,
    /// Mixing coefficient (`1 - gamma` for DFS, `gamma` for SFS; Eq. 26).
    pub coef: f32,
}

/// Apply a single learnable frequency filter (FMLP-Rec's global filter when
/// `mask` is all ones).
pub fn spectral_filter(x: &Tensor, w_re: &Tensor, w_im: &Tensor, mask: &[f32]) -> Tensor {
    assert_eq!(
        w_re.shape(),
        w_im.shape(),
        "spectral_filter: real/imag filter shapes must match"
    );
    spectral_filter_mix(
        x,
        &[SpectralBranch {
            w_re: w_re.clone(),
            w_im: w_im.clone(),
            mask: mask.to_vec(),
            coef: 1.0,
        }],
    )
}

/// Apply a mixture of masked learnable frequency filters along the time axis
/// of a `[B, N, D]` tensor.
#[allow(clippy::needless_range_loop)] // strided gather/scatter over (b, k, c) planes
pub fn spectral_filter_mix(x: &Tensor, branches: &[SpectralBranch]) -> Tensor {
    let _prof = super::fwd_prof("spectral_filter_mix", x.len());
    assert!(!branches.is_empty(), "need at least one filter branch");
    let shape = x.shape();
    assert_eq!(shape.len(), 3, "spectral filter expects [B, N, D]");
    let (b, n, d) = (shape[0], shape[1], shape[2]);
    assert!(n >= 1, "empty time axis");
    // Which transform path this shape takes (trig-matmul for short
    // sequences, per-channel FFT otherwise) — counted once per op call.
    if n <= DFT_MATMUL_MAX_N && d > 0 {
        slime_trace::metrics::counter_add("spectral.matmul_path", 1);
    } else {
        slime_trace::metrics::counter_add("spectral.fft_path", 1);
    }
    let m = n / 2 + 1;
    for (i, br) in branches.iter().enumerate() {
        assert_eq!(br.w_re.shape(), vec![m, d], "branch {i} w_re shape");
        assert_eq!(br.w_im.shape(), vec![m, d], "branch {i} w_im shape");
        assert_eq!(br.mask.len(), m, "branch {i} mask length");
    }

    let (fre, fim) = effective_filter(branches, m, d);
    let data = x.data();
    let (out, xre, xim) = spectral_transform(data.data(), &fre, &fim, b, n, d, m);
    drop(data);

    // F is pure scratch — hand it straight back to the buffer pool.
    crate::pool::recycle(fre);
    crate::pool::recycle(fim);

    let mut parents = Vec::with_capacity(1 + branches.len() * 2);
    parents.push(x.clone());
    for br in branches {
        parents.push(br.w_re.clone());
        parents.push(br.w_im.clone());
    }
    Tensor::from_op(
        NdArray::from_vec(vec![b, n, d], out),
        parents,
        Box::new(SpectralOp {
            b,
            n,
            d,
            xre: std::cell::RefCell::new(xre),
            xim: std::cell::RefCell::new(xim),
            masks: branches.iter().map(|br| br.mask.clone()).collect(),
            coefs: branches.iter().map(|br| br.coef).collect(),
        }),
    )
}

/// Shared transform body (eager construction and plan replay):
/// `y = irfft(rfft(x) * F)` along the time axis. Returns
/// `(out, xre, xim)` — the output signal and the saved forward spectrum
/// planes the backward pass reads.
///
/// Short sequences (the recommendation case) run the transform as two
/// cached-table matmuls per [N, D] batch plane through the blocked row
/// kernel; long ones fall back to per-(batch, channel) FFTs. Both grids
/// are pure functions of the shape, so results never depend on the
/// thread count.
#[allow(clippy::needless_range_loop)] // strided gather/scatter over (b, k, c) planes
fn spectral_transform(
    src: &[f32],
    fre: &[f32],
    fim: &[f32],
    b: usize,
    n: usize,
    d: usize,
    m: usize,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    debug_assert!(
        src.len() == b * n * d && fre.len() == m * d && fim.len() == m * d,
        "signal is [b, n, d] with [m, d] filter planes"
    );
    let mut xre = crate::pool::take_filled(b * m * d, 0.0);
    let mut xim = crate::pool::take_filled(b * m * d, 0.0);
    if n <= DFT_MATMUL_MAX_N && d > 0 {
        let wre = UnsafeSlice::new(&mut xre);
        let wim = UnsafeSlice::new(&mut xim);
        slime_par::parallel_for(b, 1, |lo, hi| {
            with_dft_tables(n, |tab| {
                for bi in lo..hi {
                    let x_plane = &src[bi * n * d..(bi + 1) * n * d];
                    // SAFETY: each batch plane is claimed by exactly one
                    // chunk, so these [M, D] slices are disjoint.
                    // lint-proof(l8): wre[lo * m * d .. hi * m * d]
                    // lint-proof(l8): wim[lo * m * d .. hi * m * d]
                    let ore = unsafe { wre.slice_mut(bi * m * d, m * d) };
                    let oim = unsafe { wim.slice_mut(bi * m * d, m * d) };
                    crate::ndarray::matmul_rows(&tab.cre, x_plane, ore, n, d);
                    crate::ndarray::matmul_rows(&tab.cim, x_plane, oim, n, d);
                }
            });
        });
    } else {
        // Workers fetch the length-n plan from their thread-local cache
        // once per chunk; because pool workers are persistent, the plan
        // survives across calls.
        let wre = UnsafeSlice::new(&mut xre);
        let wim = UnsafeSlice::new(&mut xim);
        slime_par::parallel_for(b * d, pairs_per_chunk(n), |lo, hi| {
            with_cached_plan(n, |plan| {
                let mut buf = vec![Complex32::ZERO; n];
                for p in lo..hi {
                    let (bi, c) = (p / d, p % d);
                    for (t, slot) in buf.iter_mut().enumerate() {
                        *slot = Complex32::new(src[(bi * n + t) * d + c], 0.0);
                    }
                    plan.forward(&mut buf);
                    for k in 0..m {
                        // SAFETY: distinct (bi, c) pairs touch disjoint
                        // (bi, k, c) slots, and each pair is claimed by
                        // exactly one chunk.
                        // lint-proof(l8): wre[(p / d * m + k) * d + p % d for p in lo..hi]
                        // lint-proof(l8): wim[(p / d * m + k) * d + p % d for p in lo..hi]
                        unsafe {
                            wre.write((bi * m + k) * d + c, buf[k].re);
                            wim.write((bi * m + k) * d + c, buf[k].im);
                        }
                    }
                }
            });
        });
    }

    // Y = X * F, then y = irfft(Y). Same decomposition as the forward
    // transform in each path.
    let mut out = crate::pool::take_filled(b * n * d, 0.0);
    if n <= DFT_MATMUL_MAX_N && d > 0 {
        // Elementwise complex product into pooled [B, M, D] planes, then
        // y[bi] = dre @ Yre[bi] + dim @ Yim[bi]: the row kernel accumulates
        // into the zeroed output, so the two matmuls fold in a fixed order.
        let mut yre = crate::pool::take_filled(b * m * d, 0.0);
        let mut yim = crate::pool::take_filled(b * m * d, 0.0);
        {
            let pre = UnsafeSlice::new(&mut yre);
            let pim = UnsafeSlice::new(&mut yim);
            let wout = UnsafeSlice::new(&mut out);
            let (xre, xim, fre, fim) = (&xre, &xim, &fre, &fim);
            slime_par::parallel_for(b, 1, |lo, hi| {
                with_dft_tables(n, |tab| {
                    for bi in lo..hi {
                        // SAFETY: disjoint per-plane slices (one chunk per
                        // batch index).
                        // lint-proof(l8): pre[lo * m * d .. hi * m * d]
                        // lint-proof(l8): pim[lo * m * d .. hi * m * d]
                        // lint-proof(l8): wout[lo * n * d .. hi * n * d]
                        let yre = unsafe { pre.slice_mut(bi * m * d, m * d) };
                        let yim = unsafe { pim.slice_mut(bi * m * d, m * d) };
                        let o = unsafe { wout.slice_mut(bi * n * d, n * d) };
                        for i in 0..m * d {
                            let xi = bi * m * d + i;
                            yre[i] = xre[xi] * fre[i] - xim[xi] * fim[i];
                            yim[i] = xre[xi] * fim[i] + xim[xi] * fre[i];
                        }
                        crate::ndarray::matmul_rows(&tab.dre, yre, o, m, d);
                        crate::ndarray::matmul_rows(&tab.dim, yim, o, m, d);
                    }
                });
            });
        }
        crate::pool::recycle(yre);
        crate::pool::recycle(yim);
    } else {
        let wout = UnsafeSlice::new(&mut out);
        let (xre, xim, fre, fim) = (&xre, &xim, &fre, &fim);
        slime_par::parallel_for(b * d, pairs_per_chunk(n), |lo, hi| {
            with_cached_plan(n, |plan| {
                let mut buf = vec![Complex32::ZERO; n];
                for p in lo..hi {
                    let (bi, c) = (p / d, p % d);
                    for k in 0..m {
                        let xi = (bi * m + k) * d + c;
                        let wi = k * d + c;
                        buf[k] = Complex32::new(
                            xre[xi] * fre[wi] - xim[xi] * fim[wi],
                            xre[xi] * fim[wi] + xim[xi] * fre[wi],
                        );
                    }
                    // Conjugate-symmetric extension with DC/Nyquist projection.
                    buf[0] = Complex32::new(buf[0].re, 0.0);
                    if n % 2 == 0 {
                        buf[m - 1] = Complex32::new(buf[m - 1].re, 0.0);
                    }
                    for k in 1..m {
                        if n - k >= m {
                            buf[n - k] = buf[k].conj();
                        }
                    }
                    plan.inverse(&mut buf);
                    // lint-proof(l8): wout[(p / d * n + t) * d + p % d for p in lo..hi]
                    for t in 0..n {
                        // SAFETY: disjoint (bi, t, c) slots per pair.
                        unsafe { wout.write((bi * n + t) * d + c, buf[t].re) };
                    }
                }
            });
        });
    }

    (out, xre, xim)
}

/// `F[k,c] = sum_i coef_i * mask_i[k] * W_i[k,c]` from branch tensors.
fn effective_filter_from(
    masks: &[Vec<f32>],
    coefs: &[f32],
    weights: &[(NdArray, NdArray)],
    m: usize,
    d: usize,
) -> (Vec<f32>, Vec<f32>) {
    debug_assert_eq!(masks.len(), coefs.len(), "one coefficient per branch mask");
    let mut fre = crate::pool::take_filled(m * d, 0.0);
    let mut fim = crate::pool::take_filled(m * d, 0.0);
    for ((mask, &coef), (wre, wim)) in masks.iter().zip(coefs).zip(weights) {
        let wre = wre.data();
        let wim = wim.data();
        for k in 0..m {
            let a = coef * mask[k];
            if a == 0.0 {
                continue;
            }
            for c in 0..d {
                fre[k * d + c] += a * wre[k * d + c];
                fim[k * d + c] += a * wim[k * d + c];
            }
        }
    }
    (fre, fim)
}

fn effective_filter(branches: &[SpectralBranch], m: usize, d: usize) -> (Vec<f32>, Vec<f32>) {
    let masks: Vec<Vec<f32>> = branches.iter().map(|b| b.mask.clone()).collect();
    let coefs: Vec<f32> = branches.iter().map(|b| b.coef).collect();
    let weights: Vec<(NdArray, NdArray)> = branches
        .iter()
        .map(|b| (b.w_re.value(), b.w_im.value()))
        .collect();
    effective_filter_from(&masks, &coefs, &weights, m, d)
}

struct SpectralOp {
    b: usize,
    n: usize,
    d: usize,
    /// Saved forward spectrum, `[B, M, D]` planes (refreshed on replay).
    xre: std::cell::RefCell<Vec<f32>>,
    xim: std::cell::RefCell<Vec<f32>>,
    masks: Vec<Vec<f32>>,
    coefs: Vec<f32>,
}

impl Op for SpectralOp {
    #[allow(clippy::needless_range_loop)] // strided gather/scatter over (b, k, c) planes
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) -> Vec<Option<NdArray>> {
        let (b, n, d) = (self.b, self.n, self.d);
        let m = n / 2 + 1;
        let g = grad.data();
        debug_assert_eq!(g.len(), b * n * d, "grad is [b, n, d]");

        // Recompute F from the (unchanged) parent weights.
        let weights: Vec<(NdArray, NdArray)> = parents[1..]
            .chunks(2)
            .map(|p| (p[0].value(), p[1].value()))
            .collect();
        let (fre, fim) = effective_filter_from(&self.masks, &self.coefs, &weights, m, d);

        // Per-bin adjoint weights c_k / N.
        let mut ck = vec![2.0f32 / n as f32; m];
        ck[0] = 1.0 / n as f32;
        if n % 2 == 0 {
            ck[m - 1] = 1.0 / n as f32;
        }

        // G = (c_k/N) rfft(grad_y). On the matmul path this is exactly the
        // transpose of the irfft fold tables — `Gre = dre^T @ grad_y`,
        // `Gim = dim^T @ grad_y` per plane, with the zeroed `dim` columns
        // supplying the "no gradient to discarded imaginary parts" rule —
        // which `matmul_tn_rows` reads in place, no transpose materialized.
        let mut gre = crate::pool::take_filled(b * m * d, 0.0);
        let mut gim = crate::pool::take_filled(b * m * d, 0.0);
        if n <= DFT_MATMUL_MAX_N && d > 0 {
            let wre = UnsafeSlice::new(&mut gre);
            let wim = UnsafeSlice::new(&mut gim);
            slime_par::parallel_for(b, 1, |lo, hi| {
                with_dft_tables(n, |tab| {
                    for bi in lo..hi {
                        let g_plane = &g[bi * n * d..(bi + 1) * n * d];
                        // SAFETY: disjoint per-plane slices.
                        // lint-proof(l8): wre[lo * m * d .. hi * m * d]
                        // lint-proof(l8): wim[lo * m * d .. hi * m * d]
                        let ore = unsafe { wre.slice_mut(bi * m * d, m * d) };
                        let oim = unsafe { wim.slice_mut(bi * m * d, m * d) };
                        crate::ndarray::matmul_tn_rows(&tab.dre, g_plane, ore, 0, n, m, d);
                        crate::ndarray::matmul_tn_rows(&tab.dim, g_plane, oim, 0, n, m, d);
                    }
                });
            });
        } else {
            let wre = UnsafeSlice::new(&mut gre);
            let wim = UnsafeSlice::new(&mut gim);
            let ck = &ck;
            slime_par::parallel_for(b * d, pairs_per_chunk(n), |lo, hi| {
                with_cached_plan(n, |plan| {
                    let mut buf = vec![Complex32::ZERO; n];
                    for p in lo..hi {
                        let (bi, c) = (p / d, p % d);
                        for (t, slot) in buf.iter_mut().enumerate() {
                            *slot = Complex32::new(g[(bi * n + t) * d + c], 0.0);
                        }
                        plan.forward(&mut buf);
                        for k in 0..m {
                            let gi = (bi * m + k) * d + c;
                            // Imaginary parts of the DC and even-N Nyquist
                            // bins were discarded by irfft, so no gradient
                            // flows to them.
                            let drop_im = k == 0 || (n % 2 == 0 && k == m - 1);
                            // SAFETY: disjoint (bi, k, c) slots per pair.
                            // lint-proof(l8): wre[(p / d * m + k) * d + p % d for p in lo..hi]
                            // lint-proof(l8): wim[(p / d * m + k) * d + p % d for p in lo..hi]
                            unsafe {
                                wre.write(gi, buf[k].re * ck[k]);
                                wim.write(gi, if drop_im { 0.0 } else { buf[k].im * ck[k] });
                            }
                        }
                    }
                });
            });
        }

        // grad_F[k,c] = sum_b G * conj(X). Parallel over frequency-bin rows:
        // each chunk owns the rows `k0..k1` of the accumulator outright and
        // sums its batch contributions in ascending-`bi` order — the same
        // order as the serial loop — so the reduction is bitwise stable
        // regardless of thread count.
        let mut dfre = crate::pool::take_filled(m * d, 0.0);
        let mut dfim = crate::pool::take_filled(m * d, 0.0);
        let xre_guard = self.xre.borrow();
        let xim_guard = self.xim.borrow();
        let (xre, xim): (&[f32], &[f32]) = (&xre_guard, &xim_guard);
        {
            let wdre = UnsafeSlice::new(&mut dfre);
            let wdim = UnsafeSlice::new(&mut dfim);
            let (gre, gim) = (&gre, &gim);
            let rows_per_chunk = (FFT_POINTS_PER_CHUNK / (b * d).max(1)).max(1);
            slime_par::parallel_for(m, rows_per_chunk, |k0, k1| {
                // SAFETY: chunks partition `0..m`, so these row ranges are
                // disjoint across tasks.
                // lint-proof(l8): wdre[k0 * d .. k1 * d]
                // lint-proof(l8): wdim[k0 * d .. k1 * d]
                let dre = unsafe { wdre.slice_mut(k0 * d, (k1 - k0) * d) };
                let dim = unsafe { wdim.slice_mut(k0 * d, (k1 - k0) * d) };
                for bi in 0..b {
                    for k in k0..k1 {
                        for c in 0..d {
                            let i = (bi * m + k) * d + c;
                            let w = (k - k0) * d + c;
                            dre[w] += gre[i] * xre[i] + gim[i] * xim[i];
                            dim[w] += gim[i] * xre[i] - gre[i] * xim[i];
                        }
                    }
                }
            });
        }

        // grad_x via grad_X = G * conj(F), then the rfft adjoint. On the
        // matmul path the adjoint is the transposed forward tables:
        // `grad_x = cre^T @ Zre + cim^T @ Zim` per plane, again read in
        // place by the tn kernel and accumulated in a fixed order.
        let mut dx = crate::pool::take_filled(b * n * d, 0.0);
        if n <= DFT_MATMUL_MAX_N && d > 0 {
            let mut zre = crate::pool::take_filled(b * m * d, 0.0);
            let mut zim = crate::pool::take_filled(b * m * d, 0.0);
            {
                let pre = UnsafeSlice::new(&mut zre);
                let pim = UnsafeSlice::new(&mut zim);
                let wdx = UnsafeSlice::new(&mut dx);
                let (gre, gim, fre, fim) = (&gre, &gim, &fre, &fim);
                slime_par::parallel_for(b, 1, |lo, hi| {
                    with_dft_tables(n, |tab| {
                        for bi in lo..hi {
                            // SAFETY: disjoint per-plane slices.
                            // lint-proof(l8): pre[lo * m * d .. hi * m * d]
                            // lint-proof(l8): pim[lo * m * d .. hi * m * d]
                            // lint-proof(l8): wdx[lo * n * d .. hi * n * d]
                            let zre = unsafe { pre.slice_mut(bi * m * d, m * d) };
                            let zim = unsafe { pim.slice_mut(bi * m * d, m * d) };
                            let o = unsafe { wdx.slice_mut(bi * n * d, n * d) };
                            for i in 0..m * d {
                                let gi = bi * m * d + i;
                                zre[i] = gre[gi] * fre[i] + gim[gi] * fim[i];
                                zim[i] = gim[gi] * fre[i] - gre[gi] * fim[i];
                            }
                            crate::ndarray::matmul_tn_rows(&tab.cre, zre, o, 0, m, n, d);
                            crate::ndarray::matmul_tn_rows(&tab.cim, zim, o, 0, m, n, d);
                        }
                    });
                });
            }
            crate::pool::recycle(zre);
            crate::pool::recycle(zim);
        } else {
            let wdx = UnsafeSlice::new(&mut dx);
            let (gre, gim, fre, fim) = (&gre, &gim, &fre, &fim);
            slime_par::parallel_for(b * d, pairs_per_chunk(n), |lo, hi| {
                let mut buf = vec![Complex32::ZERO; n];
                for p in lo..hi {
                    let (bi, c) = (p / d, p % d);
                    buf.iter_mut().for_each(|s| *s = Complex32::ZERO);
                    for k in 0..m {
                        let i = (bi * m + k) * d + c;
                        let w = k * d + c;
                        buf[k] = Complex32::new(
                            gre[i] * fre[w] + gim[i] * fim[w],
                            gim[i] * fre[w] - gre[i] * fim[w],
                        );
                    }
                    // `ifft_unscaled` reuses this worker's cached plan.
                    slime_fft::ifft_unscaled(&mut buf);
                    // lint-proof(l8): wdx[(p / d * n + t) * d + p % d for p in lo..hi]
                    for t in 0..n {
                        // SAFETY: disjoint (bi, t, c) slots per pair.
                        unsafe { wdx.write((bi * n + t) * d + c, buf[t].re) };
                    }
                }
            });
        }

        let mut grads: Vec<Option<NdArray>> = vec![Some(NdArray::from_vec(vec![b, n, d], dx))];
        for (mask, &coef) in self.masks.iter().zip(&self.coefs) {
            let mut dwre = crate::pool::take_filled(m * d, 0.0);
            let mut dwim = crate::pool::take_filled(m * d, 0.0);
            for k in 0..m {
                let a = coef * mask[k];
                if a != 0.0 {
                    for c in 0..d {
                        dwre[k * d + c] = a * dfre[k * d + c];
                        dwim[k * d + c] = a * dfim[k * d + c];
                    }
                }
            }
            grads.push(Some(NdArray::from_vec(vec![m, d], dwre)));
            grads.push(Some(NdArray::from_vec(vec![m, d], dwim)));
        }
        // Everything else was backward-local scratch; recycle it.
        for buf in [gre, gim, fre, fim, dfre, dfim] {
            crate::pool::recycle(buf);
        }
        grads
    }
    fn name(&self) -> &'static str {
        "spectral_filter_mix"
    }
    fn replayable(&self) -> bool {
        true
    }
    fn replay(&self, parents: &[Tensor], _ctx: &mut crate::plan::ReplayCtx) -> Option<NdArray> {
        let _prof = super::fwd_prof("spectral_filter_mix", parents[0].len());
        debug_assert_eq!(parents.len() % 2, 1, "signal plus (re, im) weight pairs");
        let (b, n, d) = (self.b, self.n, self.d);
        let m = n / 2 + 1;
        if n <= DFT_MATMUL_MAX_N && d > 0 {
            slime_trace::metrics::counter_add("spectral.matmul_path", 1);
        } else {
            slime_trace::metrics::counter_add("spectral.fft_path", 1);
        }
        let weights: Vec<(NdArray, NdArray)> = parents[1..]
            .chunks(2)
            .map(|p| (p[0].value(), p[1].value()))
            .collect();
        let (fre, fim) = effective_filter_from(&self.masks, &self.coefs, &weights, m, d);
        let data = parents[0].data();
        let (out, xre, xim) = spectral_transform(data.data(), &fre, &fim, b, n, d, m);
        drop(data);
        crate::pool::recycle(fre);
        crate::pool::recycle(fim);
        crate::pool::recycle(std::mem::replace(&mut *self.xre.borrow_mut(), xre));
        crate::pool::recycle(std::mem::replace(&mut *self.xim.borrow_mut(), xim));
        Some(NdArray::from_vec(vec![b, n, d], out))
    }
}

impl Drop for SpectralOp {
    fn drop(&mut self) {
        // The saved spectrum planes are plain `Vec`s (not `NdArray`s), so
        // recycle them by hand when the graph node dies.
        crate::pool::recycle(self.xre.take());
        crate::pool::recycle(self.xim.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{mul, sum_all};

    fn ones_branch(m: usize, d: usize) -> SpectralBranch {
        SpectralBranch {
            w_re: Tensor::param(NdArray::ones(vec![m, d])),
            w_im: Tensor::param(NdArray::zeros(vec![m, d])),
            mask: vec![1.0; m],
            coef: 1.0,
        }
    }

    #[test]
    fn identity_filter_is_identity() {
        // W = 1 + 0i with full mask leaves the signal unchanged.
        let (bsz, n, d) = (2, 8, 3);
        let m = n / 2 + 1;
        let x = Tensor::param(NdArray::from_vec(
            vec![bsz, n, d],
            (0..bsz * n * d).map(|i| (i as f32 * 0.37).sin()).collect(),
        ));
        let y = spectral_filter_mix(&x, &[ones_branch(m, d)]);
        for (a, b) in y.value().data().iter().zip(x.value().data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_mask_zeroes_output() {
        let (bsz, n, d) = (1, 6, 2);
        let m = n / 2 + 1;
        let mut br = ones_branch(m, d);
        br.mask = vec![0.0; m];
        let x = Tensor::param(NdArray::ones(vec![bsz, n, d]));
        let y = spectral_filter_mix(&x, &[br]);
        for v in y.value().data() {
            assert!(v.abs() < 1e-6);
        }
    }

    #[test]
    fn dc_only_mask_averages() {
        // Keeping only bin 0 projects each channel onto its mean.
        let (bsz, n, d) = (1, 4, 1);
        let m = n / 2 + 1;
        let mut br = ones_branch(m, d);
        br.mask = vec![1.0, 0.0, 0.0];
        let x = Tensor::param(NdArray::from_vec(vec![bsz, n, d], vec![1., 2., 3., 6.]));
        let y = spectral_filter_mix(&x, &[br]);
        for v in y.value().data() {
            assert!((v - 3.0).abs() < 1e-4, "{v}");
        }
    }

    #[test]
    fn two_branch_mix_is_linear() {
        let (bsz, n, d) = (1, 8, 2);
        let m = n / 2 + 1;
        let x = Tensor::param(NdArray::from_vec(
            vec![bsz, n, d],
            (0..bsz * n * d).map(|i| (i as f32 * 0.9).cos()).collect(),
        ));
        let gamma = 0.25;
        let b1 = SpectralBranch {
            coef: 1.0 - gamma,
            ..ones_branch(m, d)
        };
        let b2 = SpectralBranch {
            coef: gamma,
            ..ones_branch(m, d)
        };
        let mixed = spectral_filter_mix(&x, &[b1.clone(), b2]);
        let only1 = spectral_filter_mix(&x, &[SpectralBranch { coef: 1.0, ..b1 }]);
        // Since both filters are identical, the gamma-mix equals either branch alone.
        for (a, b) in mixed.value().data().iter().zip(only1.value().data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn gradients_flow_to_weights_and_input() {
        let (bsz, n, d) = (2, 6, 2);
        let m = n / 2 + 1;
        let br = ones_branch(m, d);
        let x = Tensor::param(NdArray::from_vec(
            vec![bsz, n, d],
            (0..bsz * n * d).map(|i| (i as f32 * 0.21).sin()).collect(),
        ));
        let w = Tensor::constant(NdArray::from_vec(
            vec![bsz, n, d],
            (0..bsz * n * d).map(|i| (i as f32 * 1.7).cos()).collect(),
        ));
        let y = spectral_filter_mix(&x, std::slice::from_ref(&br));
        sum_all(&mul(&y, &w)).backward();
        assert!(x.grad().is_some());
        assert!(br.w_re.grad().is_some());
        assert!(br.w_im.grad().is_some());
        let gw = br.w_re.grad().unwrap();
        assert!(gw.data().iter().any(|v| v.abs() > 1e-6));
    }

    #[test]
    fn masked_bins_receive_no_weight_gradient() {
        let (bsz, n, d) = (1, 8, 1);
        let m = n / 2 + 1;
        let mut br = ones_branch(m, d);
        br.mask = vec![0.0, 1.0, 1.0, 0.0, 0.0];
        let x = Tensor::param(NdArray::from_vec(
            vec![bsz, n, d],
            (0..n).map(|i| (i as f32).sin()).collect(),
        ));
        let y = spectral_filter_mix(&x, std::slice::from_ref(&br));
        sum_all(&mul(&y, &y)).backward();
        let g = br.w_re.grad().unwrap();
        assert_eq!(g.data()[0], 0.0);
        assert_eq!(g.data()[3], 0.0);
        assert_eq!(g.data()[4], 0.0);
        assert!(g.data()[1].abs() > 0.0 || g.data()[2].abs() > 0.0);
    }

    #[test]
    fn dft_tables_match_fft_plan_and_roundtrip() {
        // The cached-table matmul path computes the same rfft as the FFT
        // plan, and its irfft fold tables invert it (even and odd n, so
        // both Nyquist conventions are covered).
        for n in [4usize, 7, 50] {
            let m = n / 2 + 1;
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin()).collect();
            let tab = DftTables::new(n);
            let mut xre = vec![0.0f32; m];
            let mut xim = vec![0.0f32; m];
            crate::ndarray::matmul_rows(&tab.cre, &x, &mut xre, n, 1);
            crate::ndarray::matmul_rows(&tab.cim, &x, &mut xim, n, 1);
            with_cached_plan(n, |plan| {
                let mut buf: Vec<Complex32> = x.iter().map(|&v| Complex32::new(v, 0.0)).collect();
                plan.forward(&mut buf);
                for k in 0..m {
                    assert!((xre[k] - buf[k].re).abs() < 1e-3, "n={n} re bin {k}");
                    assert!((xim[k] - buf[k].im).abs() < 1e-3, "n={n} im bin {k}");
                }
            });
            let mut y = vec![0.0f32; n];
            crate::ndarray::matmul_rows(&tab.dre, &xre, &mut y, m, 1);
            crate::ndarray::matmul_rows(&tab.dim, &xim, &mut y, m, 1);
            for (t, (a, b)) in y.iter().zip(&x).enumerate() {
                assert!((a - b).abs() < 1e-4, "n={n} roundtrip t={t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn long_sequences_use_fft_path() {
        // n > DFT_MATMUL_MAX_N exercises the Bluestein/FFT branch end to
        // end: the identity filter must still be the identity and gradients
        // must still flow.
        let (bsz, n, d) = (1, DFT_MATMUL_MAX_N + 22, 2);
        let m = n / 2 + 1;
        let x = Tensor::param(NdArray::from_vec(
            vec![bsz, n, d],
            (0..bsz * n * d).map(|i| (i as f32 * 0.13).sin()).collect(),
        ));
        let y = spectral_filter_mix(&x, &[ones_branch(m, d)]);
        for (a, b) in y.value().data().iter().zip(x.value().data()) {
            assert!((a - b).abs() < 2e-3, "{a} vs {b}");
        }
        sum_all(&mul(&y, &y)).backward();
        assert!(x.grad().is_some());
    }

    #[test]
    fn odd_length_sequences_work() {
        let (bsz, n, d) = (1, 7, 2);
        let m = n / 2 + 1;
        let x = Tensor::param(NdArray::from_vec(
            vec![bsz, n, d],
            (0..bsz * n * d).map(|i| i as f32 * 0.1).collect(),
        ));
        let y = spectral_filter_mix(&x, &[ones_branch(m, d)]);
        for (a, b) in y.value().data().iter().zip(x.value().data()) {
            assert!((a - b).abs() < 1e-4);
        }
        sum_all(&y).backward();
        assert!(x.grad().is_some());
    }
}
