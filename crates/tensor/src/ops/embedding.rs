//! Embedding lookup (paper Eq. 9) with scatter-add backward.

use crate::ndarray::NdArray;
use crate::tensor::{Op, Tensor};

/// Look up rows of `weight` (`[V, D]`) at `indices`, producing a tensor of
/// shape `batch_shape + [D]`.
///
/// `indices.len()` must equal the product of `batch_shape`. The backward pass
/// scatter-adds the output gradient into the rows of the weight gradient, so
/// repeated indices accumulate.
pub fn embedding(weight: &Tensor, indices: &[usize], batch_shape: &[usize]) -> Tensor {
    let wshape = weight.shape();
    assert_eq!(wshape.len(), 2, "embedding weight must be [V, D]");
    let (v, d) = (wshape[0], wshape[1]);
    let n: usize = batch_shape.iter().product();
    assert_eq!(indices.len(), n, "indices length vs batch shape");
    let data = weight.data();
    let w = data.data();
    let mut out = Vec::with_capacity(n * d);
    for &idx in indices {
        assert!(idx < v, "embedding index {idx} out of vocab {v}");
        out.extend_from_slice(&w[idx * d..(idx + 1) * d]);
    }
    drop(data);
    let mut out_shape = batch_shape.to_vec();
    out_shape.push(d);
    Tensor::from_op(
        NdArray::from_vec(out_shape, out),
        vec![weight.clone()],
        Box::new(EmbeddingOp {
            v,
            d,
            indices: indices.to_vec(),
        }),
    )
}

struct EmbeddingOp {
    v: usize,
    d: usize,
    indices: Vec<usize>,
}

impl Op for EmbeddingOp {
    fn backward(&self, grad: &NdArray, _parents: &[Tensor]) -> Vec<Option<NdArray>> {
        let g = grad.data();
        let mut dw = vec![0.0f32; self.v * self.d];
        for (row, &idx) in self.indices.iter().enumerate() {
            let src = row * self.d;
            let dst = idx * self.d;
            for j in 0..self.d {
                dw[dst + j] += g[src + j];
            }
        }
        vec![Some(NdArray::from_vec(vec![self.v, self.d], dw))]
    }
    fn name(&self) -> &'static str {
        "embedding"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::sum_all;

    #[test]
    fn lookup_shapes_and_values() {
        let w = Tensor::param(NdArray::from_vec(vec![3, 2], vec![1., 2., 3., 4., 5., 6.]));
        let e = embedding(&w, &[2, 0, 2, 1], &[2, 2]);
        assert_eq!(e.shape(), vec![2, 2, 2]);
        assert_eq!(e.value().data(), &[5., 6., 1., 2., 5., 6., 3., 4.]);
    }

    #[test]
    fn repeated_indices_accumulate_grad() {
        let w = Tensor::param(NdArray::zeros(vec![3, 2]));
        let e = embedding(&w, &[1, 1, 0], &[3]);
        sum_all(&e).backward();
        let g = w.grad().unwrap();
        assert_eq!(g.data(), &[1., 1., 2., 2., 0., 0.]);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn rejects_out_of_range_index() {
        let w = Tensor::param(NdArray::zeros(vec![2, 2]));
        embedding(&w, &[5], &[1]);
    }
}
