//! Embedding lookup (paper Eq. 9) with scatter-add backward.

use crate::ndarray::NdArray;
use crate::tensor::{Op, Tensor};

/// Look up rows of `weight` (`[V, D]`) at `indices`, producing a tensor of
/// shape `batch_shape + [D]`.
///
/// `indices.len()` must equal the product of `batch_shape`. The backward pass
/// scatter-adds the output gradient into the rows of the weight gradient, so
/// repeated indices accumulate.
pub fn embedding(weight: &Tensor, indices: &[usize], batch_shape: &[usize]) -> Tensor {
    let _prof = super::fwd_prof("embedding", indices.len());
    let wshape = weight.shape();
    assert_eq!(wshape.len(), 2, "embedding weight must be [V, D]");
    let (v, d) = (wshape[0], wshape[1]);
    let n: usize = batch_shape.iter().product();
    assert_eq!(indices.len(), n, "indices length vs batch shape");
    let mut out_shape = batch_shape.to_vec();
    out_shape.push(d);
    let out = lookup(&weight.data(), indices, v, d, out_shape.clone());
    Tensor::from_op(
        out,
        vec![weight.clone()],
        Box::new(EmbeddingOp {
            v,
            d,
            out_shape,
            indices: std::cell::RefCell::new(indices.to_vec()),
            slot: crate::plan::slot_of(indices),
        }),
    )
}

/// Shared forward body (eager construction and plan replay).
fn lookup(data: &NdArray, indices: &[usize], v: usize, d: usize, out_shape: Vec<usize>) -> NdArray {
    let w = data.data();
    let mut out = crate::pool::take_empty(indices.len() * d);
    for &idx in indices {
        assert!(idx < v, "embedding index {idx} out of vocab {v}");
        out.extend_from_slice(&w[idx * d..(idx + 1) * d]);
    }
    NdArray::from_vec(out_shape, out)
}

struct EmbeddingOp {
    v: usize,
    d: usize,
    out_shape: Vec<usize>,
    indices: std::cell::RefCell<Vec<usize>>,
    /// Which per-step buffer the indices came from (for plan rebinding).
    slot: Option<crate::plan::Slot>,
}

impl Op for EmbeddingOp {
    fn backward(&self, grad: &NdArray, _parents: &[Tensor]) -> Vec<Option<NdArray>> {
        let g = grad.data();
        let (v, d) = (self.v, self.d);
        let indices = self.indices.borrow();
        debug_assert_eq!(g.len(), indices.len() * d, "grad is [rows, d]");
        // Stable counting sort of gradient rows by target vocab index. Each
        // vocab row's contributions are then applied in ascending gradient-row
        // order — exactly the order the serial scatter-add used — so the
        // parallel scatter below is bitwise identical to it at any thread
        // count (grid and order depend only on the data, never on threads).
        let mut starts = vec![0usize; v + 1];
        for &idx in indices.iter() {
            starts[idx + 1] += 1;
        }
        for u in 0..v {
            starts[u + 1] += starts[u];
        }
        let mut cursor = starts.clone();
        let mut order = vec![0usize; indices.len()];
        for (row, &idx) in indices.iter().enumerate() {
            order[cursor[idx]] = row;
            cursor[idx] += 1;
        }
        let mut dw = crate::pool::take_filled(v * d, 0.0);
        {
            let w = slime_par::UnsafeSlice::new(&mut dw);
            let (starts, order) = (&starts, &order);
            slime_par::parallel_for(v, (4096 / d.max(1)).max(1), |v0, v1| {
                // SAFETY: vocab ranges partition `0..v`, so the row slices
                // are disjoint across chunks.
                // lint-proof(l8): w[v0 * d .. v1 * d]
                let rows = unsafe { w.slice_mut(v0 * d, (v1 - v0) * d) };
                for u in v0..v1 {
                    let dst = (u - v0) * d;
                    for &row in &order[starts[u]..starts[u + 1]] {
                        let src = row * d;
                        for j in 0..d {
                            rows[dst + j] += g[src + j];
                        }
                    }
                }
            });
        }
        vec![Some(NdArray::from_vec(vec![v, d], dw))]
    }
    fn name(&self) -> &'static str {
        "embedding"
    }
    fn replayable(&self) -> bool {
        true
    }
    fn bound_slot(&self) -> Option<crate::plan::Slot> {
        self.slot
    }
    fn rebind(&self, data: &[usize]) {
        let mut indices = self.indices.borrow_mut();
        debug_assert_eq!(indices.len(), data.len(), "rebind length");
        indices.clear();
        indices.extend_from_slice(data);
    }
    fn replay(&self, parents: &[Tensor], _ctx: &mut crate::plan::ReplayCtx) -> Option<NdArray> {
        let _prof = super::fwd_prof("embedding", self.indices.borrow().len());
        debug_assert_eq!(parents.len(), 1, "embedding has one parent (the table)");
        Some(lookup(
            &parents[0].data(),
            &self.indices.borrow(),
            self.v,
            self.d,
            self.out_shape.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::sum_all;

    #[test]
    fn lookup_shapes_and_values() {
        let w = Tensor::param(NdArray::from_vec(vec![3, 2], vec![1., 2., 3., 4., 5., 6.]));
        let e = embedding(&w, &[2, 0, 2, 1], &[2, 2]);
        assert_eq!(e.shape(), vec![2, 2, 2]);
        assert_eq!(e.value().data(), &[5., 6., 1., 2., 5., 6., 3., 4.]);
    }

    #[test]
    fn repeated_indices_accumulate_grad() {
        let w = Tensor::param(NdArray::zeros(vec![3, 2]));
        let e = embedding(&w, &[1, 1, 0], &[3]);
        sum_all(&e).backward();
        let g = w.grad().unwrap();
        assert_eq!(g.data(), &[1., 1., 2., 2., 0., 0.]);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn rejects_out_of_range_index() {
        let w = Tensor::param(NdArray::zeros(vec![2, 2]));
        embedding(&w, &[5], &[1]);
    }
}
