//! Differentiable operations.
//!
//! Every function here builds a graph node: it computes the forward value
//! eagerly and records an [`Op`](crate::tensor::Op) whose `backward` produces
//! the vector-Jacobian products for its parents. All ops are validated
//! against finite differences in `tests/gradcheck.rs`.

mod dropout;
mod elementwise;
mod embedding;
mod loss;
mod matmul;
mod norm;
mod reduce;
mod shape;
mod softmax;
mod spectral;

/// Forward-profiling guard for the heavy op constructors, matching the
/// generic backward timer in `Tensor::backward_with` so each op gets one
/// merged profile row under its tape name. `elements` is the primary
/// operand's length, feeding the profiler's ns-per-element column.
/// `None` (no clock read, no allocation) while tracing is off — the
/// zero-overhead default.
pub(crate) fn fwd_prof(name: &'static str, elements: usize) -> Option<slime_trace::prof::Timer> {
    ensure_attr_probe();
    slime_trace::prof::timer_n(name, slime_trace::prof::Phase::Forward, elements as u64)
}

/// Register the profiler's kernel-attribution probe exactly once. The
/// probe lives here (not in slime-trace) because the SIMD backend and
/// fuse gate are tensor-side state — trace cannot depend on tensor.
pub(crate) fn ensure_attr_probe() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        slime_trace::prof::set_attr_probe(|| {
            (crate::simd::backend().code(), crate::simd::fuse::enabled())
        });
    });
}

pub use dropout::dropout;
pub use elementwise::{
    add, add_scalar, exp, gelu, log, mul, neg, relu, scale, sigmoid, softplus, sub, tanh,
};
pub use embedding::embedding;
pub use loss::cross_entropy;
pub use matmul::{bmm, bmm_nt, matmul, matmul_nt};
pub use norm::{l2_normalize, layer_norm};
pub use reduce::{mean_all, mean_axis, sum_all, sum_axis};
pub use shape::{concat, gather_positions, index_axis, permute, reshape, slice_axis, unfold_time};
pub use softmax::{log_softmax, softmax};
pub use spectral::{spectral_filter, spectral_filter_mix, SpectralBranch};

use crate::ndarray::NdArray;
use crate::tensor::{Op, Tensor};

/// Assert that two operand shapes are NumPy-broadcast-compatible: aligned
/// right-to-left, every dimension pair must match or contain a 1.
pub(crate) fn assert_broadcastable(a: &[usize], b: &[usize], op: &str) {
    let compatible = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .all(|(&x, &y)| x == y || x == 1 || y == 1);
    assert!(
        compatible,
        "{op}: operand shapes {a:?} and {b:?} are not broadcast-compatible"
    );
}

/// Replay closure for a [`Unary`] op: `(parent_value, old_saved)` to
/// `(fresh_output, fresh_saved)`. Must compute the exact expressions the
/// eager constructor computes so a replayed step is bitwise identical.
pub(crate) type UnaryRefwd = Box<dyn Fn(&NdArray, &NdArray) -> (NdArray, NdArray)>;

/// A unary op saving one array, with the VJP given as a closure
/// `(grad_out, saved) -> grad_in`. Ops constructed with
/// [`unary_replayable`] additionally carry a forward-recompute closure and
/// participate in recorded step plans (the saved array sits in a `RefCell`
/// so replay can refresh it in place).
pub(crate) struct Unary<F>
where
    F: Fn(&NdArray, &NdArray) -> NdArray,
{
    name: &'static str,
    saved: std::cell::RefCell<NdArray>,
    vjp: F,
    refwd: Option<UnaryRefwd>,
}

impl<F> Op for Unary<F>
where
    F: Fn(&NdArray, &NdArray) -> NdArray,
{
    fn backward(&self, grad_out: &NdArray, _parents: &[Tensor]) -> Vec<Option<NdArray>> {
        vec![Some((self.vjp)(grad_out, &self.saved.borrow()))]
    }
    fn name(&self) -> &'static str {
        self.name
    }
    fn replayable(&self) -> bool {
        self.refwd.is_some()
    }
    fn replay(&self, parents: &[Tensor], _ctx: &mut crate::plan::ReplayCtx) -> Option<NdArray> {
        debug_assert_eq!(parents.len(), 1, "unary op has one parent");
        let refwd = self.refwd.as_ref()?;
        let (out, fresh) = refwd(&parents[0].data(), &self.saved.borrow());
        *self.saved.borrow_mut() = fresh;
        Some(out)
    }
}

pub(crate) fn unary<F>(
    name: &'static str,
    x: &Tensor,
    out: NdArray,
    saved: NdArray,
    vjp: F,
) -> Tensor
where
    F: Fn(&NdArray, &NdArray) -> NdArray + 'static,
{
    Tensor::from_op(
        out,
        vec![x.clone()],
        Box::new(Unary {
            name,
            saved: std::cell::RefCell::new(saved),
            vjp,
            refwd: None,
        }),
    )
}

/// [`unary`] plus a replay closure, making the op step-plan replayable.
pub(crate) fn unary_replayable<F>(
    name: &'static str,
    x: &Tensor,
    out: NdArray,
    saved: NdArray,
    vjp: F,
    refwd: UnaryRefwd,
) -> Tensor
where
    F: Fn(&NdArray, &NdArray) -> NdArray + 'static,
{
    Tensor::from_op(
        out,
        vec![x.clone()],
        Box::new(Unary {
            name,
            saved: std::cell::RefCell::new(saved),
            vjp,
            refwd: Some(refwd),
        }),
    )
}
