//! Elementwise arithmetic and activation ops (with NumPy broadcasting for
//! the binary ones).

use super::{assert_broadcastable, unary, unary_replayable};
use crate::ndarray::NdArray;
use crate::plan::ReplayCtx;
use crate::tensor::{Op, Tensor};

/// Same-shape binary fast path through the SIMD dispatch table; mismatched
/// shapes fall back to the general broadcasting walk. The scalar backend's
/// kernels compute the identical per-element expressions, so routing through
/// the table never changes values.
fn binary_dispatch(
    a: &NdArray,
    b: &NdArray,
    kernel: fn(&[f32], &[f32], &mut [f32]),
    fallback: impl Fn(f32, f32) -> f32,
) -> NdArray {
    if a.shape() == b.shape() {
        let mut out = crate::pool::take_filled(a.len(), 0.0);
        kernel(a.data(), b.data(), &mut out);
        NdArray::from_vec(a.shape().to_vec(), out)
    } else {
        a.broadcast_zip(b, fallback)
    }
}

/// `src * c` through the dispatch table.
fn scale_arr(a: &NdArray, c: f32) -> NdArray {
    let mut out = crate::pool::take_filled(a.len(), 0.0);
    (crate::simd::kernels().scale)(a.data(), c, &mut out);
    NdArray::from_vec(a.shape().to_vec(), out)
}

/// `a + b` with broadcasting.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_broadcastable(&a.shape(), &b.shape(), "add");
    let out = binary_dispatch(&a.data(), &b.data(), crate::simd::kernels().add, |x, y| {
        x + y
    });
    Tensor::from_op(
        out,
        vec![a.clone(), b.clone()],
        Box::new(AddOp {
            a_shape: a.shape(),
            b_shape: b.shape(),
            sign: 1.0,
        }),
    )
}

/// `a - b` with broadcasting.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    assert_broadcastable(&a.shape(), &b.shape(), "sub");
    let out = binary_dispatch(&a.data(), &b.data(), crate::simd::kernels().sub, |x, y| {
        x - y
    });
    Tensor::from_op(
        out,
        vec![a.clone(), b.clone()],
        Box::new(AddOp {
            a_shape: a.shape(),
            b_shape: b.shape(),
            sign: -1.0,
        }),
    )
}

struct AddOp {
    a_shape: Vec<usize>,
    b_shape: Vec<usize>,
    /// +1 for add, -1 for sub (applied to `b`'s gradient).
    sign: f32,
}

impl Op for AddOp {
    fn backward(&self, grad: &NdArray, _parents: &[Tensor]) -> Vec<Option<NdArray>> {
        let ga = grad.reduce_to_shape(&self.a_shape);
        let mut gb = grad.reduce_to_shape(&self.b_shape);
        if self.sign < 0.0 {
            gb.map_inplace(|v| -v);
        }
        vec![Some(ga), Some(gb)]
    }
    fn name(&self) -> &'static str {
        "add"
    }
    fn replayable(&self) -> bool {
        true
    }
    fn replay(&self, parents: &[Tensor], _ctx: &mut ReplayCtx) -> Option<NdArray> {
        debug_assert_eq!(parents.len(), 2, "add/sub has two parents");
        let k = crate::simd::kernels();
        let (a, b) = (parents[0].data(), parents[1].data());
        Some(if self.sign < 0.0 {
            binary_dispatch(&a, &b, k.sub, |x, y| x - y)
        } else {
            binary_dispatch(&a, &b, k.add, |x, y| x + y)
        })
    }
}

/// `a * b` elementwise with broadcasting.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_broadcastable(&a.shape(), &b.shape(), "mul");
    let out = binary_dispatch(&a.data(), &b.data(), crate::simd::kernels().mul, |x, y| {
        x * y
    });
    Tensor::from_op(out, vec![a.clone(), b.clone()], Box::new(MulOp))
}

/// Stateless: backward reads the parents' *current* values, so it stays
/// correct after a step-plan replay refreshes them in place.
struct MulOp;

impl Op for MulOp {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) -> Vec<Option<NdArray>> {
        debug_assert_eq!(parents.len(), 2, "mul has two parents");
        let k = crate::simd::kernels();
        let (a, b) = (parents[0].data(), parents[1].data());
        let ga = binary_dispatch(grad, &b, k.mul, |g, b| g * b).reduce_to_shape(a.shape());
        let gb = binary_dispatch(grad, &a, k.mul, |g, a| g * a).reduce_to_shape(b.shape());
        vec![Some(ga), Some(gb)]
    }
    fn name(&self) -> &'static str {
        "mul"
    }
    fn replayable(&self) -> bool {
        true
    }
    fn replay(&self, parents: &[Tensor], _ctx: &mut ReplayCtx) -> Option<NdArray> {
        debug_assert_eq!(parents.len(), 2, "mul has two parents");
        Some(binary_dispatch(
            &parents[0].data(),
            &parents[1].data(),
            crate::simd::kernels().mul,
            |x, y| x * y,
        ))
    }
}

/// `-a`.
pub fn neg(a: &Tensor) -> Tensor {
    scale(a, -1.0)
}

/// `c * a` for a constant scalar `c`.
pub fn scale(a: &Tensor, c: f32) -> Tensor {
    let out = scale_arr(&a.data(), c);
    unary_replayable(
        "scale",
        a,
        out,
        NdArray::scalar(c),
        |g, saved| scale_arr(g, saved.scalar_value()),
        Box::new(|x, saved| (scale_arr(x, saved.scalar_value()), saved.clone())),
    )
}

/// `a + c` for a constant scalar `c`.
pub fn add_scalar(a: &Tensor, c: f32) -> Tensor {
    let out = a.data().map(|v| v + c);
    unary_replayable(
        "add_scalar",
        a,
        out,
        NdArray::scalar(c),
        |g, _| g.clone(),
        Box::new(|x, saved| {
            let c = saved.scalar_value();
            (x.map(|v| v + c), saved.clone())
        }),
    )
}

/// `exp(a)`.
pub fn exp(a: &Tensor) -> Tensor {
    let out = a.data().map(f32::exp);
    let saved = out.clone();
    unary("exp", a, out, saved, |g, y| g.zip_map(y, |g, y| g * y))
}

/// `ln(max(a, 1e-12))` — clamped to keep gradients finite near zero.
pub fn log(a: &Tensor) -> Tensor {
    const EPS: f32 = 1e-12;
    let out = a.data().map(|v| v.max(EPS).ln());
    unary("log", a, out, a.value(), |g, x| {
        g.zip_map(x, |g, x| g / x.max(EPS))
    })
}

/// Logistic sigmoid `1 / (1 + e^{-a})`.
pub fn sigmoid(a: &Tensor) -> Tensor {
    let out = a.data().map(|v| 1.0 / (1.0 + (-v).exp()));
    let saved = out.clone();
    unary_replayable(
        "sigmoid",
        a,
        out,
        saved,
        |g, y| g.zip_map(y, |g, y| g * y * (1.0 - y)),
        Box::new(|x, _| {
            let out = x.map(|v| 1.0 / (1.0 + (-v).exp()));
            (out.clone(), out)
        }),
    )
}

/// Hyperbolic tangent.
pub fn tanh(a: &Tensor) -> Tensor {
    let out = a.data().map(f32::tanh);
    let saved = out.clone();
    unary_replayable(
        "tanh",
        a,
        out,
        saved,
        |g, y| g.zip_map(y, |g, y| g * (1.0 - y * y)),
        Box::new(|x, _| {
            let out = x.map(f32::tanh);
            (out.clone(), out)
        }),
    )
}

/// Rectified linear unit.
pub fn relu(a: &Tensor) -> Tensor {
    let out = a.data().map(|v| v.max(0.0));
    unary_replayable(
        "relu",
        a,
        out,
        a.value(),
        |g, x| g.zip_map(x, |g, x| if x > 0.0 { g } else { 0.0 }),
        Box::new(|x, _| (x.map(|v| v.max(0.0)), x.clone())),
    )
}

/// GELU activation (tanh approximation, as used by BERT/the paper's FFN,
/// Eq. 29). The branch-free `fast_tanh` inner loop lives in
/// `crate::simd::scalar`, with an 8-wide FMA variant dispatched at runtime;
/// both forward and backward route through the table.
pub fn gelu(a: &Tensor) -> Tensor {
    let data = a.data();
    let out = gelu_arr(&data);
    drop(data);
    unary_replayable(
        "gelu",
        a,
        out,
        a.value(),
        |g, x| {
            let mut dx = crate::pool::take_filled(g.len(), 0.0);
            (crate::simd::kernels().gelu_bwd)(x.data(), g.data(), &mut dx);
            NdArray::from_vec(g.shape().to_vec(), dx)
        },
        Box::new(|x, _| (gelu_arr(x), x.clone())),
    )
}

fn gelu_arr(x: &NdArray) -> NdArray {
    let mut out = crate::pool::take_filled(x.len(), 0.0);
    (crate::simd::kernels().gelu_fwd)(x.data(), &mut out);
    NdArray::from_vec(x.shape().to_vec(), out)
}

/// Numerically-stable `softplus(a) = ln(1 + e^a)`.
pub fn softplus(a: &Tensor) -> Tensor {
    let out = a.data().map(softplus_scalar);
    unary("softplus", a, out, a.value(), |g, x| {
        g.zip_map(x, |g, x| g / (1.0 + (-x).exp()))
    })
}

fn softplus_scalar(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        (1.0 + x.exp()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::scalar::fast_tanh;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::param(NdArray::from_vec(shape.to_vec(), data.to_vec()))
    }

    #[test]
    fn fast_tanh_tracks_libm() {
        // Dense sweep across the useful range plus saturated tails.
        for i in -2000..=2000 {
            let x = i as f32 * 0.01;
            let err = (fast_tanh(x) - x.tanh()).abs();
            assert!(err < 2e-6, "fast_tanh({x}) off by {err}");
        }
        assert_eq!(fast_tanh(40.0), fast_tanh(9.0));
        assert_eq!(fast_tanh(-40.0), fast_tanh(-9.0));
    }

    #[test]
    fn add_broadcast_backward_reduces() {
        let a = t(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = t(&[3], &[10., 20., 30.]);
        let y = add(&a, &b);
        assert_eq!(y.value().data(), &[11., 22., 33., 14., 25., 36.]);
        let loss = sum_all_helper(&y);
        loss.backward();
        assert_eq!(a.grad().unwrap().data(), &[1.; 6]);
        assert_eq!(b.grad().unwrap().data(), &[2., 2., 2.]);
    }

    #[test]
    fn sub_backward_negates_rhs() {
        let a = t(&[2], &[5., 6.]);
        let b = t(&[2], &[1., 2.]);
        let loss = sum_all_helper(&sub(&a, &b));
        loss.backward();
        assert_eq!(a.grad().unwrap().data(), &[1., 1.]);
        assert_eq!(b.grad().unwrap().data(), &[-1., -1.]);
    }

    #[test]
    fn mul_broadcast_grads() {
        let a = t(&[2, 2], &[1., 2., 3., 4.]);
        let b = t(&[2], &[10., 100.]);
        let loss = sum_all_helper(&mul(&a, &b));
        loss.backward();
        assert_eq!(a.grad().unwrap().data(), &[10., 100., 10., 100.]);
        assert_eq!(b.grad().unwrap().data(), &[4., 6.]);
    }

    #[test]
    fn activation_values() {
        let x = t(&[3], &[-1.0, 0.0, 2.0]);
        assert_eq!(relu(&x).value().data(), &[0.0, 0.0, 2.0]);
        let s = sigmoid(&x).value();
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        let th = tanh(&x).value();
        assert!((th.data()[2] - 2.0f32.tanh()).abs() < 1e-6);
        let g = gelu(&x).value();
        assert!(g.data()[1].abs() < 1e-6); // gelu(0) = 0
        assert!((g.data()[2] - 1.9545977).abs() < 1e-3); // gelu(2)
    }

    #[test]
    fn softplus_extremes_are_stable() {
        let x = t(&[3], &[-50.0, 0.0, 50.0]);
        let y = softplus(&x).value();
        assert!(y.data()[0] >= 0.0 && y.data()[0] < 1e-8);
        assert!((y.data()[1] - (2.0f32).ln()).abs() < 1e-6);
        assert!((y.data()[2] - 50.0).abs() < 1e-4);
    }

    #[test]
    fn log_is_clamped() {
        let x = t(&[2], &[0.0, 1.0]);
        let y = log(&x).value();
        assert!(y.data()[0].is_finite());
        assert_eq!(y.data()[1], 0.0);
    }

    fn sum_all_helper(x: &Tensor) -> Tensor {
        super::super::sum_all(x)
    }
}
