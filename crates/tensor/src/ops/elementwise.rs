//! Elementwise arithmetic and activation ops (with NumPy broadcasting for
//! the binary ones).

use super::{assert_broadcastable, unary};
use crate::ndarray::NdArray;
use crate::tensor::{Op, Tensor};

/// `a + b` with broadcasting.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_broadcastable(&a.shape(), &b.shape(), "add");
    let out = a.data().broadcast_zip(&b.data(), |x, y| x + y);
    Tensor::from_op(
        out,
        vec![a.clone(), b.clone()],
        Box::new(AddOp {
            a_shape: a.shape(),
            b_shape: b.shape(),
            sign: 1.0,
        }),
    )
}

/// `a - b` with broadcasting.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    assert_broadcastable(&a.shape(), &b.shape(), "sub");
    let out = a.data().broadcast_zip(&b.data(), |x, y| x - y);
    Tensor::from_op(
        out,
        vec![a.clone(), b.clone()],
        Box::new(AddOp {
            a_shape: a.shape(),
            b_shape: b.shape(),
            sign: -1.0,
        }),
    )
}

struct AddOp {
    a_shape: Vec<usize>,
    b_shape: Vec<usize>,
    /// +1 for add, -1 for sub (applied to `b`'s gradient).
    sign: f32,
}

impl Op for AddOp {
    fn backward(&self, grad: &NdArray, _parents: &[Tensor]) -> Vec<Option<NdArray>> {
        let ga = grad.reduce_to_shape(&self.a_shape);
        let mut gb = grad.reduce_to_shape(&self.b_shape);
        if self.sign < 0.0 {
            gb.map_inplace(|v| -v);
        }
        vec![Some(ga), Some(gb)]
    }
    fn name(&self) -> &'static str {
        "add"
    }
}

/// `a * b` elementwise with broadcasting.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_broadcastable(&a.shape(), &b.shape(), "mul");
    let out = a.data().broadcast_zip(&b.data(), |x, y| x * y);
    Tensor::from_op(
        out,
        vec![a.clone(), b.clone()],
        Box::new(MulOp {
            a: a.value(),
            b: b.value(),
        }),
    )
}

struct MulOp {
    a: NdArray,
    b: NdArray,
}

impl Op for MulOp {
    fn backward(&self, grad: &NdArray, _parents: &[Tensor]) -> Vec<Option<NdArray>> {
        let ga = grad
            .broadcast_zip(&self.b, |g, b| g * b)
            .reduce_to_shape(self.a.shape());
        let gb = grad
            .broadcast_zip(&self.a, |g, a| g * a)
            .reduce_to_shape(self.b.shape());
        vec![Some(ga), Some(gb)]
    }
    fn name(&self) -> &'static str {
        "mul"
    }
}

/// `-a`.
pub fn neg(a: &Tensor) -> Tensor {
    scale(a, -1.0)
}

/// `c * a` for a constant scalar `c`.
pub fn scale(a: &Tensor, c: f32) -> Tensor {
    let out = a.data().map(|v| v * c);
    unary("scale", a, out, NdArray::scalar(c), |g, saved| {
        let c = saved.scalar_value();
        g.map(|v| v * c)
    })
}

/// `a + c` for a constant scalar `c`.
pub fn add_scalar(a: &Tensor, c: f32) -> Tensor {
    let out = a.data().map(|v| v + c);
    unary("add_scalar", a, out, NdArray::scalar(0.0), |g, _| g.clone())
}

/// `exp(a)`.
pub fn exp(a: &Tensor) -> Tensor {
    let out = a.data().map(f32::exp);
    let saved = out.clone();
    unary("exp", a, out, saved, |g, y| g.zip_map(y, |g, y| g * y))
}

/// `ln(max(a, 1e-12))` — clamped to keep gradients finite near zero.
pub fn log(a: &Tensor) -> Tensor {
    const EPS: f32 = 1e-12;
    let out = a.data().map(|v| v.max(EPS).ln());
    unary("log", a, out, a.value(), |g, x| {
        g.zip_map(x, |g, x| g / x.max(EPS))
    })
}

/// Logistic sigmoid `1 / (1 + e^{-a})`.
pub fn sigmoid(a: &Tensor) -> Tensor {
    let out = a.data().map(|v| 1.0 / (1.0 + (-v).exp()));
    let saved = out.clone();
    unary("sigmoid", a, out, saved, |g, y| {
        g.zip_map(y, |g, y| g * y * (1.0 - y))
    })
}

/// Hyperbolic tangent.
pub fn tanh(a: &Tensor) -> Tensor {
    let out = a.data().map(f32::tanh);
    let saved = out.clone();
    unary("tanh", a, out, saved, |g, y| {
        g.zip_map(y, |g, y| g * (1.0 - y * y))
    })
}

/// Rectified linear unit.
pub fn relu(a: &Tensor) -> Tensor {
    let out = a.data().map(|v| v.max(0.0));
    unary("relu", a, out, a.value(), |g, x| {
        g.zip_map(x, |g, x| if x > 0.0 { g } else { 0.0 })
    })
}

/// GELU activation (tanh approximation, as used by BERT/the paper's FFN,
/// Eq. 29).
pub fn gelu(a: &Tensor) -> Tensor {
    let out = a.data().map(gelu_scalar);
    unary("gelu", a, out, a.value(), |g, x| {
        g.zip_map(x, |g, x| g * gelu_grad_scalar(x))
    })
}

const SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_C: f32 = 0.044_715;

/// Branch-free rational `tanh` for the GELU hot loop.
///
/// libm's `tanhf` is an accurate but scalar, branchy routine; called once
/// per element of a `[batch * len, 4 * hidden]` activation it dominates the
/// FFN's runtime. This is the classic odd-polynomial-over-even-polynomial
/// fit on the clamped range `[-9, 9]` (the same shape Eigen and XLA use):
/// straight-line mul/add/div that the compiler vectorizes, with absolute
/// error below `1e-6` — far inside the tanh-GELU approximation error.
/// Only `gelu` routes through it; the public `tanh` op keeps libm.
fn fast_tanh(x: f32) -> f32 {
    const A1: f32 = 4.893_525e-3;
    const A3: f32 = 6.372_619e-4;
    const A5: f32 = 1.485_722_4e-5;
    const A7: f32 = 5.122_297e-8;
    const A9: f32 = -8.604_672e-11;
    const A11: f32 = 2.000_188e-13;
    const A13: f32 = -2.760_768_5e-16;
    const B0: f32 = 4.893_525e-3;
    const B2: f32 = 2.268_434_6e-3;
    const B4: f32 = 1.185_347e-4;
    const B6: f32 = 1.198_258_4e-6;
    let x = x.clamp(-9.0, 9.0);
    let x2 = x * x;
    let p = x * (A1 + x2 * (A3 + x2 * (A5 + x2 * (A7 + x2 * (A9 + x2 * (A11 + x2 * A13))))));
    let q = B0 + x2 * (B2 + x2 * (B4 + x2 * B6));
    p / q
}

fn gelu_scalar(x: f32) -> f32 {
    0.5 * x * (1.0 + fast_tanh(SQRT_2_OVER_PI * (x + GELU_C * x * x * x)))
}

fn gelu_grad_scalar(x: f32) -> f32 {
    let u = SQRT_2_OVER_PI * (x + GELU_C * x * x * x);
    let t = fast_tanh(u);
    let du = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_C * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// Numerically-stable `softplus(a) = ln(1 + e^a)`.
pub fn softplus(a: &Tensor) -> Tensor {
    let out = a.data().map(softplus_scalar);
    unary("softplus", a, out, a.value(), |g, x| {
        g.zip_map(x, |g, x| g / (1.0 + (-x).exp()))
    })
}

fn softplus_scalar(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        (1.0 + x.exp()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::param(NdArray::from_vec(shape.to_vec(), data.to_vec()))
    }

    #[test]
    fn fast_tanh_tracks_libm() {
        // Dense sweep across the useful range plus saturated tails.
        for i in -2000..=2000 {
            let x = i as f32 * 0.01;
            let err = (fast_tanh(x) - x.tanh()).abs();
            assert!(err < 2e-6, "fast_tanh({x}) off by {err}");
        }
        assert_eq!(fast_tanh(40.0), fast_tanh(9.0));
        assert_eq!(fast_tanh(-40.0), fast_tanh(-9.0));
    }

    #[test]
    fn add_broadcast_backward_reduces() {
        let a = t(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = t(&[3], &[10., 20., 30.]);
        let y = add(&a, &b);
        assert_eq!(y.value().data(), &[11., 22., 33., 14., 25., 36.]);
        let loss = sum_all_helper(&y);
        loss.backward();
        assert_eq!(a.grad().unwrap().data(), &[1.; 6]);
        assert_eq!(b.grad().unwrap().data(), &[2., 2., 2.]);
    }

    #[test]
    fn sub_backward_negates_rhs() {
        let a = t(&[2], &[5., 6.]);
        let b = t(&[2], &[1., 2.]);
        let loss = sum_all_helper(&sub(&a, &b));
        loss.backward();
        assert_eq!(a.grad().unwrap().data(), &[1., 1.]);
        assert_eq!(b.grad().unwrap().data(), &[-1., -1.]);
    }

    #[test]
    fn mul_broadcast_grads() {
        let a = t(&[2, 2], &[1., 2., 3., 4.]);
        let b = t(&[2], &[10., 100.]);
        let loss = sum_all_helper(&mul(&a, &b));
        loss.backward();
        assert_eq!(a.grad().unwrap().data(), &[10., 100., 10., 100.]);
        assert_eq!(b.grad().unwrap().data(), &[4., 6.]);
    }

    #[test]
    fn activation_values() {
        let x = t(&[3], &[-1.0, 0.0, 2.0]);
        assert_eq!(relu(&x).value().data(), &[0.0, 0.0, 2.0]);
        let s = sigmoid(&x).value();
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        let th = tanh(&x).value();
        assert!((th.data()[2] - 2.0f32.tanh()).abs() < 1e-6);
        let g = gelu(&x).value();
        assert!(g.data()[1].abs() < 1e-6); // gelu(0) = 0
        assert!((g.data()[2] - 1.9545977).abs() < 1e-3); // gelu(2)
    }

    #[test]
    fn softplus_extremes_are_stable() {
        let x = t(&[3], &[-50.0, 0.0, 50.0]);
        let y = softplus(&x).value();
        assert!(y.data()[0] >= 0.0 && y.data()[0] < 1e-8);
        assert!((y.data()[1] - (2.0f32).ln()).abs() < 1e-6);
        assert!((y.data()[2] - 50.0).abs() < 1e-4);
    }

    #[test]
    fn log_is_clamped() {
        let x = t(&[2], &[0.0, 1.0]);
        let y = log(&x).value();
        assert!(y.data()[0].is_finite());
        assert_eq!(y.data()[1], 0.0);
    }

    fn sum_all_helper(x: &Tensor) -> Tensor {
        super::super::sum_all(x)
    }
}
