//! The autodiff `Tensor`: an `Rc`-shared graph node recording the op that
//! produced it, with reverse-mode backpropagation.

use std::cell::{Ref, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::ndarray::NdArray;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// A differentiable operation in the computation graph.
///
/// Implementors store whatever forward state their backward pass needs
/// (saved inputs/outputs are cheap `NdArray` clones — the buffer is shared).
pub trait Op {
    /// Given the gradient w.r.t. this op's output and the parent tensors,
    /// return the gradient w.r.t. each parent (`None` for parents that do not
    /// require grad or receive no gradient).
    fn backward(&self, grad_out: &NdArray, parents: &[Tensor]) -> Vec<Option<NdArray>>;

    /// Op name for error messages and graph debugging.
    fn name(&self) -> &'static str;

    /// Whether this op supports [`Op::replay`] (recorded step plans replay
    /// only through ops that do; any other op makes the step non-replayable
    /// and the trainer falls back to eager tracing).
    fn replayable(&self) -> bool {
        false
    }

    /// Recompute this op's forward value from its parents' *current* values,
    /// refreshing (via interior mutability) any saved state `backward` reads.
    /// Returns `None` when replay is impossible in this context (e.g. a
    /// stochastic op given no RNG).
    fn replay(&self, _parents: &[Tensor], _ctx: &mut crate::plan::ReplayCtx) -> Option<NdArray> {
        None
    }

    /// Which per-step integer buffer this op captured, if any; replay calls
    /// [`Op::rebind`] with the fresh buffer for that slot before `replay`.
    fn bound_slot(&self) -> Option<crate::plan::Slot> {
        None
    }

    /// Replace the op's captured integer buffer with fresh per-step data.
    fn rebind(&self, _data: &[usize]) {}
}

static NODES_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// Lifetime count of graph nodes allocated by [`Tensor::from_op`]
/// (gradient-tracking outputs only). The step-plan machinery asserts this
/// stays flat across replays; published as the `tape.nodes_allocated` gauge.
pub fn nodes_allocated() -> u64 {
    NODES_ALLOCATED.load(Ordering::Relaxed)
}

struct Node {
    parents: Vec<Tensor>,
    op: Box<dyn Op>,
}

impl Drop for Inner {
    // Dropping a deep graph naively recurses through the parent chain and
    // overflows the stack (a 20k-op chain is routine for RNNs / long training
    // graphs). Flatten the destruction into an explicit worklist instead.
    //
    // Invariant this relies on: `Op` implementations never store `Tensor`s
    // (only `NdArray` values and plain data), so `node.parents` is the only
    // place graph edges live.
    fn drop(&mut self) {
        let Some(node) = self.node.take() else { return };
        let mut worklist: Vec<Tensor> = node.parents;
        while let Some(t) = worklist.pop() {
            if let Ok(mut inner) = Rc::try_unwrap(t.inner) {
                if let Some(n) = inner.node.take() {
                    worklist.extend(n.parents);
                }
                // `inner` now has node == None; its Drop is trivial.
            }
        }
    }
}

struct Inner {
    id: u64,
    data: RefCell<NdArray>,
    grad: RefCell<Option<NdArray>>,
    requires_grad: bool,
    node: Option<Node>,
}

/// A tensor in the autodiff graph.
///
/// Cloning a `Tensor` clones the handle, not the storage. Leaf tensors
/// created with [`Tensor::param`] accumulate gradients in-place when
/// [`Tensor::backward`] runs on a scalar loss downstream of them.
#[derive(Clone)]
pub struct Tensor {
    inner: Rc<Inner>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tensor")
            .field("id", &self.inner.id)
            .field("shape", &self.shape())
            .field("requires_grad", &self.inner.requires_grad)
            .field(
                "op",
                &self
                    .inner
                    .node
                    .as_ref()
                    .map(|n| n.op.name())
                    .unwrap_or("leaf"),
            )
            .finish()
    }
}

impl Tensor {
    /// A constant leaf (no gradient tracking).
    pub fn constant(data: NdArray) -> Tensor {
        Self::leaf(data, false)
    }

    /// A trainable leaf parameter (accumulates gradients).
    pub fn param(data: NdArray) -> Tensor {
        Self::leaf(data, true)
    }

    fn leaf(data: NdArray, requires_grad: bool) -> Tensor {
        let t = Tensor {
            inner: Rc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                data: RefCell::new(data),
                grad: RefCell::new(None),
                requires_grad,
                node: None,
            }),
        };
        crate::plan::record_leaf(&t);
        t
    }

    /// Construct a non-leaf tensor produced by `op` from `parents`.
    ///
    /// Gradient tracking is enabled iff any parent requires grad.
    ///
    /// With the `sanitize` feature enabled, the freshly computed output is
    /// scanned for NaN/Inf so numeric corruption is attributed to the op
    /// that produced it instead of surfacing as garbage metrics downstream.
    pub fn from_op(data: NdArray, parents: Vec<Tensor>, op: Box<dyn Op>) -> Tensor {
        #[cfg(feature = "sanitize")]
        sanitize_check("output", op.name(), &data, &parents);
        let requires_grad = parents.iter().any(|p| p.requires_grad());
        if requires_grad {
            NODES_ALLOCATED.fetch_add(1, Ordering::Relaxed);
        }
        let t = Tensor {
            inner: Rc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                data: RefCell::new(data),
                grad: RefCell::new(None),
                requires_grad,
                node: if requires_grad {
                    Some(Node { parents, op })
                } else {
                    None
                },
            }),
        };
        crate::plan::record_node(&t);
        t
    }

    /// Plan-capture probe: `Some(replayable)` for a tensor with a graph
    /// node, `None` for op outputs that tracked no gradient (no node).
    pub(crate) fn op_replay_support(&self) -> Option<bool> {
        self.inner.node.as_ref().map(|n| n.op.replayable())
    }

    /// Name of the producing op (`"leaf"` for leaves).
    pub(crate) fn op_name(&self) -> &'static str {
        self.inner
            .node
            .as_ref()
            .map(|n| n.op.name())
            .unwrap_or("leaf")
    }

    /// Replay this node's op against its parents' current values, rebinding
    /// the per-step integer buffer first if the op captured one. Returns the
    /// recomputed value or the op's name on failure.
    pub(crate) fn replay_node(
        &self,
        inputs: &[usize],
        targets: &[usize],
        ctx: &mut crate::plan::ReplayCtx,
    ) -> Result<NdArray, &'static str> {
        let node = self.inner.node.as_ref().ok_or("leaf")?;
        match node.op.bound_slot() {
            Some(crate::plan::Slot::Inputs) => node.op.rebind(inputs),
            Some(crate::plan::Slot::Targets) => node.op.rebind(targets),
            None => {}
        }
        node.op
            .replay(&node.parents, ctx)
            .ok_or_else(|| node.op.name())
    }

    /// Unique id of this tensor node.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Whether gradients flow to/through this tensor.
    pub fn requires_grad(&self) -> bool {
        self.inner.requires_grad
    }

    /// Whether this is a leaf (no producing op).
    pub fn is_leaf(&self) -> bool {
        self.inner.node.is_none()
    }

    /// Borrow the tensor's value.
    pub fn data(&self) -> Ref<'_, NdArray> {
        self.inner.data.borrow()
    }

    /// Clone of the tensor's value (cheap: shared buffer).
    pub fn value(&self) -> NdArray {
        self.inner.data.borrow().clone()
    }

    /// Shape of the tensor.
    pub fn shape(&self) -> Vec<usize> {
        self.inner.data.borrow().shape().to_vec()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.data.borrow().len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scalar value of a one-element tensor.
    pub fn item(&self) -> f32 {
        self.inner.data.borrow().scalar_value()
    }

    /// Replace the value in place (used by optimizers).
    ///
    /// # Panics
    /// Panics if the new shape differs.
    pub fn set_data(&self, data: NdArray) {
        let mut slot = self.inner.data.borrow_mut();
        assert_eq!(slot.shape(), data.shape(), "set_data shape mismatch");
        *slot = data;
    }

    /// Mutate the value in place through a closure (used by optimizers).
    pub fn with_data_mut(&self, f: impl FnOnce(&mut NdArray)) {
        f(&mut self.inner.data.borrow_mut());
    }

    /// The accumulated gradient of a leaf parameter, if any.
    pub fn grad(&self) -> Option<NdArray> {
        self.inner.grad.borrow().clone()
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.inner.grad.borrow_mut() = None;
    }

    /// Mutate the gradient slot directly (used by gradient clipping).
    pub fn with_grad_mut(&self, f: impl FnOnce(&mut Option<NdArray>)) {
        f(&mut self.inner.grad.borrow_mut());
    }

    /// A new constant leaf sharing this tensor's current value
    /// (cuts the graph; no gradient flows through).
    pub fn detach(&self) -> Tensor {
        Tensor::constant(self.value())
    }

    /// Reverse-mode backpropagation from a scalar tensor.
    ///
    /// Accumulates gradients into every reachable leaf with
    /// `requires_grad == true`. Gradients of intermediate nodes are held in a
    /// temporary map and dropped when backprop finishes.
    ///
    /// # Panics
    /// Panics if called on a non-scalar tensor.
    pub fn backward(&self) {
        assert_eq!(
            self.len(),
            1,
            "backward() requires a scalar loss, got shape {:?}",
            self.shape()
        );
        let seed = NdArray::full(self.shape(), 1.0);
        self.backward_with(seed);
    }

    /// Backpropagation with an explicit output gradient (any shape).
    pub fn backward_with(&self, seed: NdArray) {
        assert_eq!(
            seed.shape(),
            self.shape().as_slice(),
            "seed gradient shape mismatch"
        );
        if !self.requires_grad() {
            return;
        }
        let order = topo_order(self);
        let mut grads: HashMap<u64, NdArray> = HashMap::new();
        grads.insert(self.id(), seed);
        // `order` is parents-before-children; traverse children first.
        for t in order.iter().rev() {
            let Some(grad) = grads.remove(&t.id()) else {
                continue;
            };
            if t.is_leaf() {
                if t.requires_grad() {
                    let mut slot = t.inner.grad.borrow_mut();
                    match slot.as_mut() {
                        Some(existing) => existing.add_scaled_assign(&grad, 1.0),
                        None => *slot = Some(grad),
                    }
                }
                continue;
            }
            let node = t.inner.node.as_ref().expect("non-leaf has node");
            // Generic backward profiling hook: one timer per op application,
            // keyed by the op's static name and carrying the output
            // gradient's size for ns-per-element normalization. Free when
            // tracing is off (a single relaxed atomic load).
            let parent_grads = {
                crate::ops::ensure_attr_probe();
                let _prof = slime_trace::prof::timer_n(
                    node.op.name(),
                    slime_trace::prof::Phase::Backward,
                    grad.len() as u64,
                );
                node.op.backward(&grad, &node.parents)
            };
            assert_eq!(
                parent_grads.len(),
                node.parents.len(),
                "op {} returned wrong number of gradients",
                node.op.name()
            );
            for (p, g) in node.parents.iter().zip(parent_grads) {
                let Some(g) = g else { continue };
                if !p.requires_grad() {
                    continue;
                }
                #[cfg(feature = "sanitize")]
                sanitize_check("gradient", node.op.name(), &g, &node.parents);
                debug_assert_eq!(
                    g.shape(),
                    p.shape().as_slice(),
                    "op {} produced gradient of wrong shape for parent",
                    node.op.name()
                );
                match grads.get_mut(&p.id()) {
                    Some(existing) => existing.add_scaled_assign(&g, 1.0),
                    None => {
                        grads.insert(p.id(), g);
                    }
                }
            }
        }
    }
}

/// Runtime numeric sanitizer (enabled by the `sanitize` cargo feature):
/// panic as soon as an op emits a non-finite output or gradient, naming the
/// op and the shapes involved. See DESIGN.md "Runtime sanitizer".
#[cfg(feature = "sanitize")]
// lint-allow(panic): panicking on the first non-finite value is the sanitizer's contract
fn sanitize_check(kind: &str, op: &str, data: &NdArray, parents: &[Tensor]) {
    let Some(idx) = data.data().iter().position(|v| !v.is_finite()) else {
        return;
    };
    // lint-allow(panic): `idx` came from `position` on this same buffer
    let bad = data.data()[idx];
    let parent_shapes: Vec<Vec<usize>> = parents.iter().map(Tensor::shape).collect();
    // lint-allow(panic): loud first-failure diagnosis is the sanitizer's contract
    panic!(
        "sanitize: non-finite {kind} ({bad}) at index {idx} produced by op '{op}' \
         ({kind} shape {:?}, operand shapes {:?})",
        data.shape(),
        parent_shapes
    );
}

/// Iterative post-order topological sort (parents before children).
fn topo_order(root: &Tensor) -> Vec<Tensor> {
    let mut order = Vec::new();
    let mut visited: HashMap<u64, ()> = HashMap::new();
    // Stack of (tensor, children_pushed) frames.
    let mut stack: Vec<(Tensor, bool)> = vec![(root.clone(), false)];
    while let Some((t, expanded)) = stack.pop() {
        if expanded {
            order.push(t);
            continue;
        }
        if visited.contains_key(&t.id()) || !t.requires_grad() {
            continue;
        }
        visited.insert(t.id(), ());
        stack.push((t.clone(), true));
        if let Some(node) = t.inner.node.as_ref() {
            for p in &node.parents {
                if !visited.contains_key(&p.id()) && p.requires_grad() {
                    stack.push((p.clone(), false));
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn leaf_properties() {
        let c = Tensor::constant(NdArray::scalar(2.0));
        assert!(c.is_leaf());
        assert!(!c.requires_grad());
        let p = Tensor::param(NdArray::scalar(3.0));
        assert!(p.requires_grad());
        assert_eq!(p.item(), 3.0);
    }

    #[test]
    fn backward_through_simple_chain() {
        // loss = mean((2x)^2) for x = [1, 2] -> d/dx = 8x/2 = 4x
        let x = Tensor::param(NdArray::from_vec(vec![2], vec![1.0, 2.0]));
        let y = ops::scale(&x, 2.0);
        let sq = ops::mul(&y, &y);
        let loss = ops::mean_all(&sq);
        loss.backward();
        let g = x.grad().unwrap();
        assert!((g.data()[0] - 4.0).abs() < 1e-5);
        assert!((g.data()[1] - 8.0).abs() < 1e-5);
    }

    #[test]
    fn grad_accumulates_across_backwards() {
        let x = Tensor::param(NdArray::scalar(5.0));
        let loss = ops::scale(&x, 3.0);
        loss.backward();
        let loss2 = ops::scale(&x, 3.0);
        loss2.backward();
        assert_eq!(x.grad().unwrap().scalar_value(), 6.0);
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn diamond_graph_accumulates_path_grads() {
        // y = x + x -> dy/dx = 2
        let x = Tensor::param(NdArray::scalar(1.0));
        let y = ops::add(&x, &x);
        y.backward();
        assert_eq!(x.grad().unwrap().scalar_value(), 2.0);
    }

    #[test]
    fn constants_get_no_grad() {
        let x = Tensor::param(NdArray::scalar(1.0));
        let c = Tensor::constant(NdArray::scalar(10.0));
        let y = ops::mul(&x, &c);
        y.backward();
        assert_eq!(x.grad().unwrap().scalar_value(), 10.0);
        assert!(c.grad().is_none());
    }

    #[test]
    fn detach_cuts_graph() {
        let x = Tensor::param(NdArray::scalar(2.0));
        let y = ops::scale(&x, 3.0).detach();
        let z = ops::scale(&y, 4.0);
        assert!(!z.requires_grad());
        assert!(x.grad().is_none());
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_rejects_non_scalar() {
        let x = Tensor::param(NdArray::zeros(vec![2]));
        ops::scale(&x, 1.0).backward();
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut t = Tensor::param(NdArray::scalar(1.0));
        let root = t.clone();
        for _ in 0..20_000 {
            t = ops::scale(&t, 1.0);
        }
        t.backward();
        assert_eq!(root.grad().unwrap().scalar_value(), 1.0);
    }
}
