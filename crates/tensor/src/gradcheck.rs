//! Finite-difference gradient checking.
//!
//! Used by the test suites of this crate and every crate built on it to
//! validate analytic backward passes.

use crate::ndarray::NdArray;
use crate::tensor::Tensor;

/// Result of a gradient check for one parameter.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradient.
    pub max_abs_diff: f32,
    /// Largest relative difference (normalized by magnitudes, floored at 1).
    pub max_rel_diff: f32,
}

/// Compare the analytic gradient of `param` (under the scalar loss built by
/// `f`) against central finite differences.
///
/// `f` must rebuild the graph from the *current* parameter values on every
/// call and must be deterministic (no unseeded dropout).
///
/// # Panics
/// Panics if `f()` is not scalar.
pub fn check_gradient(param: &Tensor, mut f: impl FnMut() -> Tensor, eps: f32) -> GradCheckReport {
    // Analytic gradient.
    param.zero_grad();
    let loss = f();
    loss.backward();
    let analytic = param
        .grad()
        .unwrap_or_else(|| NdArray::zeros(param.shape()));

    // Numeric gradient by central differences, one coordinate at a time.
    let n = param.len();
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for i in 0..n {
        let orig = param.value().data()[i];
        param.with_data_mut(|d| d.data_mut()[i] = orig + eps);
        let plus = f().item();
        param.with_data_mut(|d| d.data_mut()[i] = orig - eps);
        let minus = f().item();
        param.with_data_mut(|d| d.data_mut()[i] = orig);
        let numeric = (plus - minus) / (2.0 * eps);
        let a = analytic.data()[i];
        let abs = (a - numeric).abs();
        let rel = abs / a.abs().max(numeric.abs()).max(1.0);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    param.zero_grad();
    GradCheckReport {
        max_abs_diff: max_abs,
        max_rel_diff: max_rel,
    }
}

/// Assert that the analytic gradient of every parameter matches finite
/// differences within `tol` (relative, floored-absolute).
pub fn assert_gradients_match(params: &[&Tensor], mut f: impl FnMut() -> Tensor, tol: f32) {
    for (i, p) in params.iter().enumerate() {
        let report = check_gradient(p, &mut f, 1e-2);
        assert!(
            report.max_rel_diff < tol,
            "param {i}: gradient mismatch (max_rel={}, max_abs={})",
            report.max_rel_diff,
            report.max_abs_diff
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn passes_on_correct_gradient() {
        let x = Tensor::param(NdArray::from_vec(vec![3], vec![0.5, -1.0, 2.0]));
        assert_gradients_match(&[&x], || ops::mean_all(&ops::mul(&x, &x)), 1e-2);
    }

    #[test]
    fn detects_wrong_gradient() {
        // scale() with a deliberately wrong constant in the loss rebuild
        // (the loss value changes between analytic and numeric passes would
        // not fool the checker; instead check that a zero-grad function vs a
        // non-constant numeric estimate trips the assertion).
        let x = Tensor::param(NdArray::from_vec(vec![1], vec![1.0]));
        // Loss reads x's data but routes it through detach, so analytic grad
        // is zero while numeric is 2x. The checker must flag this.
        let report = check_gradient(
            &x,
            || ops::mean_all(&ops::mul(&x.detach(), &x.detach())),
            1e-2,
        );
        assert!(report.max_rel_diff > 0.5);
    }
}
