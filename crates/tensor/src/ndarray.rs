//! Dense row-major n-dimensional array of `f32` with NumPy-style
//! broadcasting, matrix multiplication kernels, and reductions.
//!
//! `NdArray` is the value type of the autodiff engine. Cloning is cheap
//! (`Rc`-shared buffer, copy-on-write on mutation) so ops can save forward
//! values for their backward pass without duplicating memory.

use crate::pool;
use std::rc::Rc;

/// Owner of an `NdArray`'s backing buffer that returns it to the
/// thread-local recycling pool (`crate::pool`) on drop instead of freeing
/// it. Transparent everywhere else: derefs to `[f32]`, clones through the
/// pool, compares and prints as the underlying slice.
pub(crate) struct Buf {
    v: Vec<f32>,
}

impl Buf {
    /// Take ownership of a buffer (pool-served or caller-allocated).
    #[inline]
    pub(crate) fn adopt(v: Vec<f32>) -> Buf {
        Buf { v }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.v
    }
}

impl Drop for Buf {
    fn drop(&mut self) {
        pool::recycle(std::mem::take(&mut self.v));
    }
}

impl Clone for Buf {
    fn clone(&self) -> Buf {
        // `Rc::make_mut` copy-on-write lands here; serve the copy from the
        // pool like any other allocation.
        let mut v = pool::take_empty(self.v.len());
        v.extend_from_slice(&self.v);
        Buf { v }
    }
}

impl std::ops::Deref for Buf {
    type Target = [f32];
    #[inline]
    fn deref(&self) -> &[f32] {
        &self.v
    }
}

impl PartialEq for Buf {
    fn eq(&self, other: &Buf) -> bool {
        self.v == other.v
    }
}

impl std::fmt::Debug for Buf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.v.fmt(f)
    }
}

/// A dense, row-major, `f32` n-dimensional array.
///
/// The empty shape `[]` denotes a scalar holding one element.
#[derive(Clone, Debug, PartialEq)]
pub struct NdArray {
    shape: Vec<usize>,
    data: Rc<Buf>,
}

/// Number of elements implied by a shape (empty shape = scalar = 1 element).
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

impl NdArray {
    /// Create an array from a shape and matching data buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: impl Into<Vec<usize>>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            numel(&shape),
            data.len(),
            "shape {shape:?} does not match data length {}",
            data.len()
        );
        NdArray {
            shape,
            data: Rc::new(Buf::adopt(data)),
        }
    }

    /// An array filled with `value`.
    pub fn full(shape: impl Into<Vec<usize>>, value: f32) -> Self {
        let shape = shape.into();
        let n = numel(&shape);
        NdArray {
            shape,
            data: Rc::new(Buf::adopt(pool::take_filled(n, value))),
        }
    }

    /// An all-zeros array.
    pub fn zeros(shape: impl Into<Vec<usize>>) -> Self {
        Self::full(shape, 0.0)
    }

    /// An all-ones array.
    pub fn ones(shape: impl Into<Vec<usize>>) -> Self {
        Self::full(shape, 1.0)
    }

    /// A scalar (shape `[]`).
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(Vec::new(), vec![value])
    }

    /// The scalar value of a single-element array.
    ///
    /// # Panics
    /// Panics if the array has more than one element.
    pub fn scalar_value(&self) -> f32 {
        assert_eq!(self.len(), 1, "scalar_value on shape {:?}", self.shape);
        self.data[0]
    }

    /// Shape of the array.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array holds zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying buffer (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (copy-on-write if shared).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        Rc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Reinterpret with a new shape of the same element count.
    ///
    /// # Panics
    /// Panics if element counts differ.
    pub fn reshape(&self, shape: impl Into<Vec<usize>>) -> NdArray {
        let shape = shape.into();
        assert_eq!(
            numel(&shape),
            self.len(),
            "cannot reshape {:?} -> {shape:?}",
            self.shape
        );
        NdArray {
            shape,
            data: Rc::clone(&self.data),
        }
    }

    /// Apply `f` elementwise, producing a new array.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> NdArray {
        let mut out = pool::take_empty(self.len());
        out.extend(self.data.iter().map(|&v| f(v)));
        NdArray {
            shape: self.shape.clone(),
            data: Rc::new(Buf::adopt(out)),
        }
    }

    /// Apply `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.data_mut() {
            *v = f(*v);
        }
    }

    /// Combine with `other` elementwise; shapes must match exactly.
    pub fn zip_map(&self, other: &NdArray, f: impl Fn(f32, f32) -> f32) -> NdArray {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        let mut out = pool::take_empty(self.len());
        out.extend(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b)),
        );
        NdArray {
            shape: self.shape.clone(),
            data: Rc::new(Buf::adopt(out)),
        }
    }

    /// Accumulate `other * scale` into `self`; shapes must match exactly.
    pub fn add_scaled_assign(&mut self, other: &NdArray, scale: f32) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        let dst = self.data_mut();
        (crate::simd::kernels().saxpy)(dst, &other.data, scale);
    }

    /// Broadcast shape of two operands under NumPy rules.
    ///
    /// # Panics
    /// Panics if the shapes are not broadcast-compatible.
    // lint-allow(panic): index arms are range-guarded (`i < nd - len` picks the 1 branch)
    pub fn broadcast_shape(a: &[usize], b: &[usize]) -> Vec<usize> {
        let nd = a.len().max(b.len());
        let mut out = vec![0usize; nd];
        for i in 0..nd {
            let da = if i < nd - a.len() {
                1
            } else {
                a[i - (nd - a.len())]
            };
            let db = if i < nd - b.len() {
                1
            } else {
                b[i - (nd - b.len())]
            };
            out[i] = if da == db {
                da
            } else if da == 1 {
                db
            } else if db == 1 {
                da
            } else {
                // lint-allow(panic): the documented incompatibility contract of this fn
                panic!("incompatible broadcast: {a:?} vs {b:?}");
            };
        }
        out
    }

    /// Elementwise binary operation with NumPy broadcasting.
    // lint-allow(panic): odometer digits stay below out_shape, and stride tables are nd long by construction
    pub fn broadcast_zip(&self, other: &NdArray, f: impl Fn(f32, f32) -> f32) -> NdArray {
        if self.shape == other.shape {
            return self.zip_map(other, f);
        }
        let out_shape = Self::broadcast_shape(&self.shape, &other.shape);
        let n = numel(&out_shape);
        let sa = broadcast_strides(&self.shape, &out_shape);
        let sb = broadcast_strides(&other.shape, &out_shape);
        let mut out = pool::take_empty(n);
        let mut idx = vec![0usize; out_shape.len()];
        let (mut off_a, mut off_b) = (0usize, 0usize);
        for _ in 0..n {
            out.push(f(self.data[off_a], other.data[off_b]));
            // Odometer increment over the output index space.
            for d in (0..out_shape.len()).rev() {
                idx[d] += 1;
                off_a += sa[d];
                off_b += sb[d];
                if idx[d] < out_shape[d] {
                    break;
                }
                off_a -= sa[d] * out_shape[d];
                off_b -= sb[d] * out_shape[d];
                idx[d] = 0;
            }
        }
        NdArray::from_vec(out_shape, out)
    }

    /// Sum this array down to `target` shape (the adjoint of broadcasting).
    ///
    /// Used by backward passes of broadcasting ops: the gradient w.r.t. a
    /// broadcast operand is the output gradient summed over the broadcast
    /// axes.
    pub fn reduce_to_shape(&self, target: &[usize]) -> NdArray {
        if self.shape == target {
            return self.clone();
        }
        assert_eq!(
            Self::broadcast_shape(target, &self.shape),
            self.shape,
            "reduce_to_shape: {target:?} does not broadcast to {:?}",
            self.shape
        );
        let n = self.len();
        let strides = broadcast_strides(target, &self.shape);
        let mut out = pool::take_filled(numel(target), 0.0);
        let mut idx = vec![0usize; self.shape.len()];
        let mut off = 0usize;
        for i in 0..n {
            out[off] += self.data[i];
            for d in (0..self.shape.len()).rev() {
                idx[d] += 1;
                off += strides[d];
                if idx[d] < self.shape[d] {
                    break;
                }
                off -= strides[d] * self.shape[d];
                idx[d] = 0;
            }
        }
        NdArray::from_vec(target.to_vec(), out)
    }

    /// 2-D matrix multiply: `[m, k] x [k, n] -> [m, n]`.
    pub fn matmul2d(&self, rhs: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 2, "matmul2d lhs must be 2-D");
        assert_eq!(rhs.ndim(), 2, "matmul2d rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul2d inner dims: {k} vs {k2}");
        let mut out = pool::take_filled(m * n, 0.0);
        matmul_kernel(&self.data, &rhs.data, &mut out, m, k, n);
        NdArray::from_vec(vec![m, n], out)
    }

    /// Transpose-free right product: `[m, k] x [n, k]^T -> [m, n]`.
    ///
    /// Reads `rhs` row-major as-is — no `[k, n]` transpose is ever
    /// materialized. Every output element is a single k-ascending dot
    /// product, so the result is bitwise identical to
    /// `self.matmul2d(&rhs.transpose_last2())`.
    pub fn matmul2d_nt(&self, rhs: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 2, "matmul2d_nt lhs must be 2-D");
        assert_eq!(rhs.ndim(), 2, "matmul2d_nt rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul2d_nt inner dims: {k} vs {k2}");
        let mut out = pool::take_filled(m * n, 0.0);
        matmul_nt_kernel(&self.data, &rhs.data, &mut out, m, k, n);
        NdArray::from_vec(vec![m, n], out)
    }

    /// Transpose-free left product: `[k, m]^T x [k, n] -> [m, n]`.
    ///
    /// Reads `self` row-major as-is (column `i` of `self` becomes row `i`
    /// of the product) — no `[m, k]` transpose is ever materialized.
    /// Accumulation runs k-ascending per output element, so the result is
    /// bitwise identical to `self.transpose_last2().matmul2d(&rhs)`.
    pub fn matmul2d_tn(&self, rhs: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 2, "matmul2d_tn lhs must be 2-D");
        assert_eq!(rhs.ndim(), 2, "matmul2d_tn rhs must be 2-D");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul2d_tn inner dims: {k} vs {k2}");
        let mut out = pool::take_filled(m * n, 0.0);
        matmul_tn_kernel(&self.data, &rhs.data, &mut out, m, k, n);
        NdArray::from_vec(vec![m, n], out)
    }

    /// Batched matrix multiply: `[b, m, k] x [b, k, n] -> [b, m, n]`.
    pub fn bmm(&self, rhs: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 3, "bmm lhs must be 3-D");
        assert_eq!(rhs.ndim(), 3, "bmm rhs must be 3-D");
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, n) = (rhs.shape[0], rhs.shape[1], rhs.shape[2]);
        assert_eq!(b, b2, "bmm batch dims");
        assert_eq!(k, k2, "bmm inner dims");
        let mut out = pool::take_filled(b * m * n, 0.0);
        {
            // Parallelize over independent batch planes; the per-plane
            // kernel runs inline when called from a pool worker.
            let (a, r) = (self.data(), rhs.data());
            let w = slime_par::UnsafeSlice::new(&mut out);
            slime_par::parallel_for(b, 1, |b0, b1| {
                // lint-proof(l8): w[b0 * m * n .. b1 * m * n]
                for i in b0..b1 {
                    // SAFETY: batch planes are disjoint.
                    let o = unsafe { w.slice_mut(i * m * n, m * n) };
                    matmul_kernel(
                        &a[i * m * k..(i + 1) * m * k],
                        &r[i * k * n..(i + 1) * k * n],
                        o,
                        m,
                        k,
                        n,
                    );
                }
            });
        }
        NdArray::from_vec(vec![b, m, n], out)
    }

    /// Batched transpose-free right product:
    /// `[b, m, k] x [b, n, k]^T -> [b, m, n]` (per-plane [`Self::matmul2d_nt`]).
    pub fn bmm_nt(&self, rhs: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 3, "bmm_nt lhs must be 3-D");
        assert_eq!(rhs.ndim(), 3, "bmm_nt rhs must be 3-D");
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, n, k2) = (rhs.shape[0], rhs.shape[1], rhs.shape[2]);
        assert_eq!(b, b2, "bmm_nt batch dims");
        assert_eq!(k, k2, "bmm_nt inner dims");
        let mut out = pool::take_filled(b * m * n, 0.0);
        {
            let (a, r) = (self.data(), rhs.data());
            let w = slime_par::UnsafeSlice::new(&mut out);
            slime_par::parallel_for(b, 1, |b0, b1| {
                // lint-proof(l8): w[b0 * m * n .. b1 * m * n]
                for i in b0..b1 {
                    // SAFETY: batch planes are disjoint.
                    let o = unsafe { w.slice_mut(i * m * n, m * n) };
                    matmul_nt_kernel(
                        &a[i * m * k..(i + 1) * m * k],
                        &r[i * n * k..(i + 1) * n * k],
                        o,
                        m,
                        k,
                        n,
                    );
                }
            });
        }
        NdArray::from_vec(vec![b, m, n], out)
    }

    /// Batched transpose-free left product:
    /// `[b, k, m]^T x [b, k, n] -> [b, m, n]` (per-plane [`Self::matmul2d_tn`]).
    pub fn bmm_tn(&self, rhs: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 3, "bmm_tn lhs must be 3-D");
        assert_eq!(rhs.ndim(), 3, "bmm_tn rhs must be 3-D");
        let (b, k, m) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, n) = (rhs.shape[0], rhs.shape[1], rhs.shape[2]);
        assert_eq!(b, b2, "bmm_tn batch dims");
        assert_eq!(k, k2, "bmm_tn inner dims");
        let mut out = pool::take_filled(b * m * n, 0.0);
        {
            let (a, r) = (self.data(), rhs.data());
            let w = slime_par::UnsafeSlice::new(&mut out);
            slime_par::parallel_for(b, 1, |b0, b1| {
                // lint-proof(l8): w[b0 * m * n .. b1 * m * n]
                for i in b0..b1 {
                    // SAFETY: batch planes are disjoint.
                    let o = unsafe { w.slice_mut(i * m * n, m * n) };
                    matmul_tn_kernel(
                        &a[i * k * m..(i + 1) * k * m],
                        &r[i * k * n..(i + 1) * k * n],
                        o,
                        m,
                        k,
                        n,
                    );
                }
            });
        }
        NdArray::from_vec(vec![b, m, n], out)
    }

    /// Transpose the last two dimensions.
    pub fn transpose_last2(&self) -> NdArray {
        let nd = self.ndim();
        assert!(nd >= 2, "transpose_last2 needs >= 2 dims");
        let mut axes: Vec<usize> = (0..nd).collect();
        axes.swap(nd - 2, nd - 1);
        self.permute(&axes)
    }

    /// Permute dimensions; `axes` must be a permutation of `0..ndim`.
    pub fn permute(&self, axes: &[usize]) -> NdArray {
        let nd = self.ndim();
        assert_eq!(axes.len(), nd, "permute axes length");
        let mut seen = vec![false; nd];
        for &a in axes {
            assert!(a < nd && !seen[a], "invalid permutation {axes:?}");
            seen[a] = true;
        }
        let in_strides = contiguous_strides(&self.shape);
        let out_shape: Vec<usize> = axes.iter().map(|&a| self.shape[a]).collect();
        let src_strides: Vec<usize> = axes.iter().map(|&a| in_strides[a]).collect();
        let n = self.len();
        // Pure gather (each output element written once), parallel over
        // output ranges; each task re-seeds the odometer at its chunk start.
        let mut out = pool::take_filled(n, 0.0);
        let src = self.data();
        let (out_shape_r, src_strides_r) = (&out_shape, &src_strides);
        let w = slime_par::UnsafeSlice::new(&mut out);
        slime_par::parallel_for(n, 1 << 14, |lo, hi| {
            let (out_shape, src_strides) = (out_shape_r, src_strides_r);
            // SAFETY: output chunks are disjoint.
            // lint-proof(l8): w[lo .. hi]
            let dst = unsafe { w.slice_mut(lo, hi - lo) };
            let mut idx = vec![0usize; nd];
            let mut off = 0usize;
            let mut rem = lo;
            for d in (0..nd).rev() {
                idx[d] = rem % out_shape[d];
                rem /= out_shape[d];
                off += idx[d] * src_strides[d];
            }
            for slot in dst.iter_mut() {
                *slot = src[off];
                for d in (0..nd).rev() {
                    idx[d] += 1;
                    off += src_strides[d];
                    if idx[d] < out_shape[d] {
                        break;
                    }
                    off -= src_strides[d] * out_shape[d];
                    idx[d] = 0;
                }
            }
        });
        NdArray::from_vec(out_shape, out)
    }

    /// Sum over one axis, removing it.
    pub fn sum_axis(&self, axis: usize) -> NdArray {
        let nd = self.ndim();
        assert!(axis < nd, "sum_axis out of range");
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut out = pool::take_filled(outer * inner, 0.0);
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let dst = &mut out[o * inner..(o + 1) * inner];
                for (d, s) in dst.iter_mut().zip(&self.data[base..base + inner]) {
                    *d += s;
                }
            }
        }
        let mut shape = self.shape.clone();
        shape.remove(axis);
        NdArray::from_vec(shape, out)
    }

    /// Mean over one axis, removing it.
    pub fn mean_axis(&self, axis: usize) -> NdArray {
        debug_assert!(axis < self.ndim(), "mean_axis: axis out of range");
        let d = self.shape[axis] as f32;
        let mut s = self.sum_axis(axis);
        s.map_inplace(|v| v / d);
        s
    }

    /// Sum of all elements (scalar).
    pub fn sum_all(&self) -> f32 {
        // Pairwise-ish accumulation in f64 for stability on long buffers.
        self.data.iter().map(|&v| v as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    pub fn mean_all(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum_all() / self.len() as f32
        }
    }
}

/// Row-major strides for a shape.
// lint-allow(panic): loop range is `0..len-1`, every index is in bounds by construction
pub fn contiguous_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Strides of `shape` viewed through broadcast `out_shape` (0 where broadcast).
fn broadcast_strides(shape: &[usize], out_shape: &[usize]) -> Vec<usize> {
    let nd = out_shape.len();
    debug_assert!(shape.len() <= nd, "operand rank exceeds broadcast rank");
    let offset = nd - shape.len();
    let own = contiguous_strides(shape);
    let mut strides = vec![0usize; nd];
    for i in 0..shape.len() {
        strides[offset + i] = if shape[i] == 1 { 0 } else { own[i] };
    }
    strides
}

/// Multiply-adds per parallel chunk of the matmul kernel. Sized so pool
/// dispatch (~µs) is amortized; products smaller than one chunk run inline
/// on the caller.
const MATMUL_CHUNK_FLOPS: usize = 1 << 16;

/// Row-parallel, register-blocked `i-k-j` matmul kernel writing into `out`
/// (must be zeroed).
///
/// Rows are partitioned into chunks sized by shape alone — never by thread
/// count — and every output element accumulates over `k` in ascending
/// order in both the blocked and remainder paths, so results are bitwise
/// identical from 1 to N threads (the slime-par determinism contract).
///
/// The former `av == 0.0` skip is gone: on dense inputs (everything this
/// workspace multiplies — activations, weights, gradients) the inner-loop
/// branch cost more than it saved and blocked vectorization.
fn matmul_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    debug_assert!(a.len() >= m * k && b.len() >= k * n && out.len() >= m * n);
    let rows_per_chunk = (MATMUL_CHUNK_FLOPS / (k * n).max(1)).clamp(1, m);
    let w = slime_par::UnsafeSlice::new(out);
    slime_par::parallel_for(m, rows_per_chunk, |r0, r1| {
        // SAFETY: chunk row ranges are disjoint, so each task owns its
        // slice of `out`.
        // lint-proof(l8): w[r0 * n .. r1 * n]
        let o = unsafe { w.slice_mut(r0 * n, (r1 - r0) * n) };
        matmul_rows(&a[r0 * k..r1 * k], b, o, k, n);
    });
}

/// Multiply a block of rows (`rows x k` times `k x n`) into `out`
/// (row-major, zeroed, `rows * n` long). Four-row register blocking shares
/// each loaded `b` row across four accumulator rows; the whole `k` loop is
/// one fused `matmul4` kernel call so the vector backend can keep the output
/// tile in registers.
pub(crate) fn matmul_rows(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    // Degenerate shapes must be handled by the caller's early-out: a zero
    // `n` here would silently compute 0 rows out of a non-empty `out`.
    debug_assert!(n > 0, "matmul_rows called with n == 0");
    debug_assert_eq!(out.len() % n, 0, "matmul_rows: out not a whole row count");
    debug_assert_eq!(a.len(), (out.len() / n) * k, "matmul_rows: a/out mismatch");
    let rows = out.len() / n;
    let kn = crate::simd::kernels();
    let mut r = 0usize;
    while r + 4 <= rows {
        let (o0, rest) = out[r * n..(r + 4) * n].split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        let a0 = &a[r * k..(r + 1) * k];
        let a1 = &a[(r + 1) * k..(r + 2) * k];
        let a2 = &a[(r + 2) * k..(r + 3) * k];
        let a3 = &a[(r + 3) * k..(r + 4) * k];
        (kn.matmul4)(o0, o1, o2, o3, a0, a1, a2, a3, b, n);
        r += 4;
    }
    while r < rows {
        let a_row = &a[r * k..(r + 1) * k];
        let o_row = &mut out[r * n..(r + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            (kn.saxpy)(o_row, b_row, av);
        }
        r += 1;
    }
}

/// Row-parallel `A x B^T` kernel: `a` is `[m, k]`, `b` is `[n, k]`, both
/// row-major, writing `[m, n]` into `out` (must be zeroed).
///
/// Same determinism contract as `matmul_kernel`: the chunk grid is a pure
/// function of the shape, and each output element is one k-ascending dot
/// product confined to a single chunk.
fn matmul_nt_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    // Each chunk packs the `b` tiles it reads, so chunks carry a fixed
    // O(k * n) packing cost on top of their rows * k * n multiply-adds:
    // keep at least NT_PACK_AMORTIZE_ROWS rows per chunk to amortize it.
    debug_assert!(a.len() >= m * k && b.len() >= n * k && out.len() >= m * n);
    let rows_per_chunk = (MATMUL_CHUNK_FLOPS / (k * n).max(1))
        .max(NT_PACK_AMORTIZE_ROWS)
        .clamp(1, m);
    let w = slime_par::UnsafeSlice::new(out);
    slime_par::parallel_for(m, rows_per_chunk, |r0, r1| {
        // SAFETY: chunk row ranges are disjoint.
        // lint-proof(l8): w[r0 * n .. r1 * n]
        let o = unsafe { w.slice_mut(r0 * n, (r1 - r0) * n) };
        matmul_nt_rows(&a[r0 * k..r1 * k], b, o, k, n);
    });
}

/// Column-tile width of the `A x B^T` kernel: a packed tile is at most
/// `NT_TILE_COLS * k` floats (64 KiB at `k = 128`), small enough to stay
/// cache-resident while every row of the chunk streams against it.
const NT_TILE_COLS: usize = 128;

/// Minimum rows per `matmul_nt_kernel` chunk, so the per-chunk tile packing
/// (`O(k * n)`) stays a small fraction of the chunk's `rows * k * n` work.
const NT_PACK_AMORTIZE_ROWS: usize = 16;

/// A block of rows of `A x B^T`: `rows x k` times `(n x k)^T` into `out`
/// (`rows * n` long, zeroed).
///
/// The rows of `b` covering a tile of at most [`NT_TILE_COLS`] output
/// columns are packed transposed into a pooled cache-resident scratch, then
/// every row of the block runs the same vectorized `i-k-j` loop as
/// `matmul_rows` against the packed tile. Tiling splits only the output
/// columns — never `k` — so each output element is still one k-ascending
/// single-accumulator sum: the exact operation sequence `matmul_rows`
/// performs on a materialized transpose, hence bitwise-identical results.
fn matmul_nt_rows(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    debug_assert!(n > 0, "matmul_nt_rows called with n == 0");
    debug_assert_eq!(out.len() % n, 0, "matmul_nt_rows: out not whole rows");
    debug_assert_eq!(
        a.len(),
        (out.len() / n) * k,
        "matmul_nt_rows: a/out mismatch"
    );
    let rows = out.len() / n;
    let jt_max = NT_TILE_COLS.min(n);
    let mut pack = crate::pool::take_filled(k * jt_max, 0.0);
    let mut j0 = 0usize;
    while j0 < n {
        let jt = jt_max.min(n - j0);
        // Pack b[j0..j0+jt, :] transposed: pack[kk * jt + jj] = b[j0+jj][kk].
        // Rows of `b` are read contiguously; the strided writes land in a
        // tile small enough to stay in cache.
        for jj in 0..jt {
            let b_row = &b[(j0 + jj) * k..(j0 + jj + 1) * k];
            for (kk, &bv) in b_row.iter().enumerate() {
                pack[kk * jt + jj] = bv;
            }
        }
        let tile = &pack[..k * jt];
        let kn = crate::simd::kernels();
        let mut r = 0usize;
        while r + 4 <= rows {
            let block = &mut out[r * n..(r + 4) * n];
            let (b0, rest) = block.split_at_mut(n);
            let (b1, rest) = rest.split_at_mut(n);
            let (b2, b3) = rest.split_at_mut(n);
            let o0 = &mut b0[j0..j0 + jt];
            let o1 = &mut b1[j0..j0 + jt];
            let o2 = &mut b2[j0..j0 + jt];
            let o3 = &mut b3[j0..j0 + jt];
            let a0 = &a[r * k..(r + 1) * k];
            let a1 = &a[(r + 1) * k..(r + 2) * k];
            let a2 = &a[(r + 2) * k..(r + 3) * k];
            let a3 = &a[(r + 3) * k..(r + 4) * k];
            (kn.matmul4)(o0, o1, o2, o3, a0, a1, a2, a3, tile, jt);
            r += 4;
        }
        while r < rows {
            let a_row = &a[r * k..(r + 1) * k];
            let o_row = &mut out[r * n + j0..r * n + j0 + jt];
            for kk in 0..k {
                let t_row = &tile[kk * jt..(kk + 1) * jt];
                (kn.saxpy)(o_row, t_row, a_row[kk]);
            }
            r += 1;
        }
        j0 += jt;
    }
    crate::pool::recycle(pack);
}

/// Row-parallel `A^T x B` kernel: `a` is `[k, m]`, `b` is `[k, n]`, both
/// row-major, writing `[m, n]` into `out` (must be zeroed).
///
/// Parallelism is over *output* rows (columns of `a`); chunk grid depends
/// only on the shape and accumulation stays k-ascending per element.
///
/// The chunk floor is a multiple of four rows: for tall-skinny adjoints
/// (`k*n` past the flops budget, e.g. `dW = A^T G`) the naive budget
/// degenerates to one row per chunk, which starves [`matmul_tn_rows`] of
/// its 4-row `matmul4` blocking and streams `b` once per output row.
/// Values are grid-independent (each output element is one k-ascending
/// chain inside a single chunk), so the floor only changes locality.
fn matmul_tn_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    let budget = (MATMUL_CHUNK_FLOPS / (k * n).max(1)).max(16);
    let rows_per_chunk = budget.next_multiple_of(4).min(m.next_multiple_of(4));
    let w = slime_par::UnsafeSlice::new(out);
    slime_par::parallel_for(m, rows_per_chunk, |r0, r1| {
        // SAFETY: chunk row ranges are disjoint.
        // lint-proof(l8): w[r0 * n .. r1 * n]
        let o = unsafe { w.slice_mut(r0 * n, (r1 - r0) * n) };
        matmul_tn_rows(a, b, o, r0, k, m, n);
    });
}

/// Output rows `r0..r0 + rows` of `A^T x B`, where `a` is the *untransposed*
/// `[k, m]` operand (so output row `i` reads column `r0 + i` of `a`, stride
/// `m`). Mirrors `matmul_rows`' four-row `i-k-j` blocking — each loaded `b`
/// row is shared across four accumulator rows, and accumulation order per
/// element is identical to running `matmul_rows` on a materialized `A^T`.
pub(crate) fn matmul_tn_rows(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    r0: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    debug_assert!(n > 0, "matmul_tn_rows called with n == 0");
    debug_assert_eq!(out.len() % n, 0, "matmul_tn_rows: out not whole rows");
    debug_assert_eq!(a.len(), k * m, "matmul_tn_rows: a is not [k, m]");
    debug_assert_eq!(b.len(), k * n, "matmul_tn_rows: b is not [k, n]");
    let rows = out.len() / n;
    debug_assert!(r0 + rows <= m, "matmul_tn_rows: row range exceeds m");
    let kn = crate::simd::kernels();
    // Cache-blocked over `k` and output rows: each `[kc, pr]` tile of `a`
    // is transposed once into a contiguous panel and the matching `[kc, n]`
    // panel of `b` stays resident while every 4-row block consumes both.
    // Without the blocking, every 4-row block walked all `k` rows of `a`
    // (one cache line each, 4 useful floats) and streamed all of `b` — for
    // tall-skinny adjoints like `dW = A^T G` (k = batch·seq, m = n =
    // hidden) that re-read both operands `rows/4` times over and the
    // kernel went memory-bound at ~5x the cost of the equal-FLOP forward.
    // Splitting `k` only splits each output element's k-ascending
    // accumulation across consecutive `matmul4` calls (which accumulate in
    // place, k-sequential), so results stay bitwise identical to the
    // single-call form.
    const TN_K_CHUNK: usize = 512;
    const TN_ROW_PANEL: usize = 256;
    let cap = k.min(TN_K_CHUNK);
    let panel_rows = rows.min(TN_ROW_PANEL);
    let mut panel = crate::pool::take_filled(panel_rows * cap, 0.0);
    let mut k0 = 0usize;
    while k0 < k {
        let kc = (k - k0).min(TN_K_CHUNK);
        let bp = &b[k0 * n..(k0 + kc) * n];
        let mut p0 = 0usize;
        while p0 < rows {
            let pr = (rows - p0).min(TN_ROW_PANEL);
            // Transpose a[k0..k0+kc, r0+p0..r0+p0+pr] into the panel:
            // sequential reads, panel-resident strided writes.
            for kk in 0..kc {
                let arow = &a[(k0 + kk) * m + r0 + p0..][..pr];
                for (i, &v) in arow.iter().enumerate() {
                    panel[i * cap + kk] = v;
                }
            }
            let mut r = p0;
            while r + 4 <= p0 + pr {
                let (o0, rest) = out[r * n..(r + 4) * n].split_at_mut(n);
                let (o1, rest) = rest.split_at_mut(n);
                let (o2, o3) = rest.split_at_mut(n);
                let i = r - p0;
                (kn.matmul4)(
                    o0,
                    o1,
                    o2,
                    o3,
                    &panel[i * cap..][..kc],
                    &panel[(i + 1) * cap..][..kc],
                    &panel[(i + 2) * cap..][..kc],
                    &panel[(i + 3) * cap..][..kc],
                    bp,
                    n,
                );
                r += 4;
            }
            while r < p0 + pr {
                let o_row = &mut out[r * n..(r + 1) * n];
                let crow = &panel[(r - p0) * cap..][..kc];
                for kk in 0..kc {
                    (kn.saxpy)(o_row, &bp[kk * n..(kk + 1) * n], crow[kk]);
                }
                r += 1;
            }
            p0 += pr;
        }
        k0 += kc;
    }
    crate::pool::recycle(panel);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_scalars() {
        let a = NdArray::zeros(vec![2, 3]);
        assert_eq!(a.shape(), &[2, 3]);
        assert_eq!(a.len(), 6);
        let s = NdArray::scalar(4.5);
        assert_eq!(s.shape(), &[] as &[usize]);
        assert_eq!(s.scalar_value(), 4.5);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_rejects_mismatch() {
        NdArray::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn copy_on_write() {
        let a = NdArray::from_vec(vec![3], vec![1.0, 2.0, 3.0]);
        let mut b = a.clone();
        b.data_mut()[0] = 9.0;
        assert_eq!(a.data()[0], 1.0);
        assert_eq!(b.data()[0], 9.0);
    }

    #[test]
    fn broadcast_shapes() {
        assert_eq!(NdArray::broadcast_shape(&[2, 3], &[3]), vec![2, 3]);
        assert_eq!(NdArray::broadcast_shape(&[4, 1, 3], &[2, 1]), vec![4, 2, 3]);
        assert_eq!(NdArray::broadcast_shape(&[], &[5]), vec![5]);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn broadcast_rejects_incompatible() {
        NdArray::broadcast_shape(&[2, 3], &[4]);
    }

    #[test]
    fn broadcast_zip_bias_pattern() {
        let x = NdArray::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = NdArray::from_vec(vec![3], vec![10., 20., 30.]);
        let y = x.broadcast_zip(&b, |a, b| a + b);
        assert_eq!(y.data(), &[11., 22., 33., 14., 25., 36.]);
    }

    #[test]
    fn broadcast_zip_middle_axis() {
        // (2,1,2) * (1,3,1) -> (2,3,2)
        let a = NdArray::from_vec(vec![2, 1, 2], vec![1., 2., 3., 4.]);
        let b = NdArray::from_vec(vec![1, 3, 1], vec![1., 10., 100.]);
        let y = a.broadcast_zip(&b, |x, y| x * y);
        assert_eq!(y.shape(), &[2, 3, 2]);
        assert_eq!(
            y.data(),
            &[1., 2., 10., 20., 100., 200., 3., 4., 30., 40., 300., 400.]
        );
    }

    #[test]
    fn reduce_to_shape_inverts_broadcast() {
        let g = NdArray::ones(vec![4, 3]);
        let r = g.reduce_to_shape(&[3]);
        assert_eq!(r.data(), &[4., 4., 4.]);
        let r2 = g.reduce_to_shape(&[4, 3]);
        assert_eq!(r2.data(), g.data());
        let r3 = NdArray::ones(vec![2, 3, 4]).reduce_to_shape(&[3, 1]);
        assert_eq!(r3.shape(), &[3, 1]);
        assert_eq!(r3.data(), &[8., 8., 8.]);
    }

    #[test]
    fn matmul2d_known_values() {
        let a = NdArray::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = NdArray::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul2d(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul2d_nt_matches_materialized_transpose() {
        let a = NdArray::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        // b is [n, k] = [2, 3]; nt multiplies by its transpose.
        let b = NdArray::from_vec(vec![2, 3], vec![7., 9., 11., 8., 10., 12.]);
        let c = a.matmul2d_nt(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), a.matmul2d(&b.transpose_last2()).data());
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul2d_tn_matches_materialized_transpose() {
        // a is [k, m] = [3, 2]; tn multiplies its transpose by b.
        let a = NdArray::from_vec(vec![3, 2], vec![1., 4., 2., 5., 3., 6.]);
        let b = NdArray::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul2d_tn(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), a.transpose_last2().matmul2d(&b).data());
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_degenerate_dims_early_out() {
        // m == 0, n == 0, and k == 0 must all produce well-formed outputs
        // instead of silently mis-shaping (the old `n.max(1)` row count).
        let a0 = NdArray::zeros(vec![0, 3]);
        let b = NdArray::zeros(vec![3, 2]);
        assert_eq!(a0.matmul2d(&b).shape(), &[0, 2]);
        let a = NdArray::zeros(vec![2, 3]);
        let b0 = NdArray::zeros(vec![3, 0]);
        assert_eq!(a.matmul2d(&b0).shape(), &[2, 0]);
        let ak0 = NdArray::zeros(vec![2, 0]);
        let bk0 = NdArray::zeros(vec![0, 2]);
        assert_eq!(ak0.matmul2d(&bk0).data(), &[0.0; 4]);
        // Same early-outs for the transpose-free variants.
        assert_eq!(a0.matmul2d_nt(&NdArray::zeros(vec![2, 3])).shape(), &[0, 2]);
        assert_eq!(a.matmul2d_nt(&NdArray::zeros(vec![0, 3])).shape(), &[2, 0]);
        assert_eq!(NdArray::zeros(vec![3, 0]).matmul2d_tn(&b).shape(), &[0, 2]);
        let a_tn = NdArray::zeros(vec![2, 3]);
        assert_eq!(
            a_tn.matmul2d_tn(&NdArray::zeros(vec![2, 0])).shape(),
            &[3, 0]
        );
    }

    #[test]
    fn bmm_nt_tn_known_values() {
        // Two planes of [1, 2] x ([2, 2]^T in nt layout).
        let a = NdArray::from_vec(vec![2, 1, 2], vec![1., 2., 3., 4.]);
        let bt = NdArray::from_vec(vec![2, 2, 2], vec![5., 6., 7., 8., 1., 0., 0., 1.]);
        let c = a.bmm_nt(&bt);
        assert_eq!(c.shape(), &[2, 1, 2]);
        assert_eq!(c.data(), a.bmm(&bt.transpose_last2()).data());
        let at = NdArray::from_vec(vec![2, 2, 1], vec![1., 2., 3., 4.]);
        let b = NdArray::from_vec(vec![2, 2, 3], (0..12).map(|v| v as f32).collect());
        let d = at.bmm_tn(&b);
        assert_eq!(d.shape(), &[2, 1, 3]);
        assert_eq!(d.data(), at.transpose_last2().bmm(&b).data());
    }

    #[test]
    fn bmm_independent_batches() {
        let a = NdArray::from_vec(vec![2, 1, 2], vec![1., 2., 3., 4.]);
        let b = NdArray::from_vec(vec![2, 2, 1], vec![5., 6., 7., 8.]);
        let c = a.bmm(&b);
        assert_eq!(c.shape(), &[2, 1, 1]);
        assert_eq!(c.data(), &[17., 53.]);
    }

    #[test]
    fn permute_and_transpose() {
        let a = NdArray::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let t = a.transpose_last2();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[1., 4., 2., 5., 3., 6.]);
        let b = NdArray::from_vec(vec![2, 2, 2], (0..8).map(|v| v as f32).collect());
        let p = b.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[2, 2, 2]);
        // p[i,j,k] = b[j,k,i]
        assert_eq!(p.data(), &[0., 2., 4., 6., 1., 3., 5., 7.]);
    }

    #[test]
    fn permute_roundtrip_inverse() {
        let a = NdArray::from_vec(vec![2, 3, 4], (0..24).map(|v| v as f32).collect());
        let p = a.permute(&[1, 2, 0]);
        let back = p.permute(&[2, 0, 1]);
        assert_eq!(back, a);
    }

    #[test]
    fn axis_reductions() {
        let a = NdArray::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.sum_axis(0).data(), &[5., 7., 9.]);
        assert_eq!(a.sum_axis(1).data(), &[6., 15.]);
        assert_eq!(a.mean_axis(1).data(), &[2., 5.]);
        assert_eq!(a.sum_all(), 21.0);
        assert!((a.mean_all() - 3.5).abs() < 1e-6);
    }

    #[test]
    fn reshape_shares_and_checks() {
        let a = NdArray::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = a.reshape(vec![3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn reshape_rejects_bad_count() {
        NdArray::zeros(vec![2, 3]).reshape(vec![4]);
    }
}
