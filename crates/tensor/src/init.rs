//! Weight initializers.

use slime_rng::Rng;

use crate::ndarray::{numel, NdArray};

/// Uniform initialization in `[-bound, bound]`.
pub fn uniform(shape: impl Into<Vec<usize>>, bound: f32, rng: &mut impl Rng) -> NdArray {
    let shape = shape.into();
    let n = numel(&shape);
    let data = (0..n).map(|_| rng.gen_range(-bound..=bound)).collect();
    NdArray::from_vec(shape, data)
}

/// Gaussian initialization with mean 0.
pub fn normal(shape: impl Into<Vec<usize>>, std: f32, rng: &mut impl Rng) -> NdArray {
    let shape = shape.into();
    let n = numel(&shape);
    // Box-Muller transform; avoids pulling in rand_distr.
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    NdArray::from_vec(shape, data)
}

/// Xavier/Glorot uniform initialization for a 2-D weight `[fan_in, fan_out]`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> NdArray {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(vec![fan_in, fan_out], bound, rng)
}

/// Truncated-normal-ish initialization used for embeddings (std 0.02, the
/// convention of SASRec/BERT4Rec/FMLP-Rec implementations).
pub fn embedding_init(vocab: usize, dim: usize, rng: &mut impl Rng) -> NdArray {
    let mut w = normal(vec![vocab, dim], 0.02, rng);
    w.map_inplace(|v| v.clamp(-0.04, 0.04));
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use slime_rng::rngs::StdRng;
    use slime_rng::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = uniform(vec![100], 0.5, &mut rng);
        for &v in w.data() {
            assert!((-0.5..=0.5).contains(&v));
        }
    }

    #[test]
    fn normal_has_right_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = normal(vec![20_000], 2.0, &mut rng);
        let mean = w.mean_all();
        let var: f32 = w
            .data()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / w.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = xavier_uniform(512, 512, &mut rng);
        let bound = (6.0f32 / 1024.0).sqrt();
        for &v in w.data() {
            assert!(v.abs() <= bound + 1e-6);
        }
    }

    #[test]
    fn embedding_init_is_clamped() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = embedding_init(100, 16, &mut rng);
        for &v in w.data() {
            assert!(v.abs() <= 0.04 + 1e-6);
        }
    }
}
