//! A minimal, dependency-free stand-in for the slice of the `criterion` API
//! the benches use (offline-purity: registry dev-dependencies are banned).
//!
//! Semantics match criterion closely enough for trend reading: each
//! benchmark warms up for `warm_up_time`, then collects `sample_size`
//! samples within `measurement_time`, each sample being a batch of
//! iterations sized so one sample takes roughly
//! `measurement_time / sample_size`. Reported numbers are per-iteration
//! min / median / mean wall-clock times. There is no statistical outlier
//! analysis — for A/B comparisons of the kind these benches make
//! (mixer vs attention, plan reuse vs fresh), medians are what matters.

use std::time::{Duration, Instant};

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        // lint-allow(raw-print): bench harness reports to the operator's terminal
        println!("\ngroup {name}");
        BenchmarkGroup {
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// A named benchmark id, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{param}", name.into()),
        }
    }

    /// Just the parameter as the label.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Number of samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// How long to run the routine before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget for measurement samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run a benchmark under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            cfg: BenchConfig {
                sample_size: self.sample_size,
                warm_up_time: self.warm_up_time,
                measurement_time: self.measurement_time,
            },
            report: None,
        };
        f(&mut b);
        b.print(name);
        self
    }

    /// Run a benchmark with an input reference (input shown in the id).
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = id.label.clone();
        self.bench_function(&label, |b| f(b, input))
    }

    /// End the group (printing already happened per-benchmark).
    pub fn finish(&mut self) {}
}

struct BenchConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

/// Per-benchmark timing driver handed to the closure (stand-in for
/// `criterion::Bencher`).
pub struct Bencher {
    cfg: BenchConfig,
    report: Option<Report>,
}

struct Report {
    min: Duration,
    median: Duration,
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Measure `routine`, discarding its output.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, counting
        // iterations to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Size each sample so sample_size samples fill measurement_time.
        let sample_budget = self.cfg.measurement_time.as_secs_f64() / self.cfg.sample_size as f64;
        let iters_per_sample = ((sample_budget / per_iter.max(1e-9)) as u64).max(1);

        let mut samples: Vec<Duration> = Vec::with_capacity(self.cfg.sample_size);
        let mut total_iters = 0u64;
        for _ in 0..self.cfg.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            samples.push(t0.elapsed() / iters_per_sample as u32);
            total_iters += iters_per_sample;
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        self.report = Some(Report {
            min,
            median,
            mean,
            iters: total_iters,
        });
    }

    fn print(&self, name: &str) {
        match &self.report {
            // lint-allow(raw-print): bench harness reports to the operator's terminal
            Some(r) => println!(
                "  {name:<40} min {:>12?}  median {:>12?}  mean {:>12?}  ({} iters)",
                r.min, r.median, r.mean, r.iters
            ),
            // lint-allow(raw-print): bench harness reports to the operator's terminal
            None => println!("  {name:<40} (no measurement)"),
        }
    }
}

// ---------------------------------------------------------------------------
// Threads-vs-throughput sweeps (no criterion analogue)
// ---------------------------------------------------------------------------

/// One measured point of a threads-vs-throughput sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Thread count the pool was capped at for this measurement.
    pub threads: usize,
    /// Fastest sample (per iteration).
    pub min: Duration,
    /// Median sample (per iteration).
    pub median: Duration,
    /// Mean over samples (per iteration).
    pub mean: Duration,
    /// Total iterations measured.
    pub iters: u64,
}

/// A named sweep: the same routine timed under each thread count.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Routine name, e.g. `train_step`.
    pub name: String,
    /// One point per requested thread count, in request order.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// Median-time speedup of the `threads = n` point relative to the
    /// `threads = 1` point, if both were measured.
    pub fn speedup(&self, n: usize) -> Option<f64> {
        let base = self.points.iter().find(|p| p.threads == 1)?;
        let at = self.points.iter().find(|p| p.threads == n)?;
        Some(base.median.as_secs_f64() / at.median.as_secs_f64().max(1e-12))
    }

    /// JSON rendering for `BENCH_par.json`.
    pub fn to_json(&self) -> slime_json::Value {
        use slime_json::Value;
        let points: Vec<Value> = self
            .points
            .iter()
            .map(|p| {
                slime_json::obj([
                    ("threads", Value::Int(p.threads as i64)),
                    ("min_ns", Value::Int(p.min.as_nanos() as i64)),
                    ("median_ns", Value::Int(p.median.as_nanos() as i64)),
                    ("mean_ns", Value::Int(p.mean.as_nanos() as i64)),
                    ("iters", Value::Int(p.iters as i64)),
                    (
                        "speedup_vs_1_thread",
                        self.speedup(p.threads)
                            .map(Value::Float)
                            .unwrap_or(Value::Null),
                    ),
                ])
            })
            .collect();
        slime_json::obj([
            ("name", Value::Str(self.name.clone())),
            ("points", Value::Arr(points)),
        ])
    }
}

/// A single timed routine outside any sweep structure — the A/B benches
/// (pool on vs off) pair these up themselves.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Fastest sample (per iteration).
    pub min: Duration,
    /// Median sample (per iteration).
    pub median: Duration,
    /// Mean over samples (per iteration).
    pub mean: Duration,
    /// Total iterations measured.
    pub iters: u64,
}

impl Measurement {
    /// Build stats from raw per-iteration samples, for benches that manage
    /// their own sampling loop (e.g. interleaved A/B floors, where
    /// alternating short chunks plus min-of-samples makes ratios stable on
    /// a loaded box — interference only ever adds time).
    pub fn from_samples(mut samples: Vec<std::time::Duration>) -> Measurement {
        assert!(
            !samples.is_empty(),
            "from_samples needs at least one sample"
        );
        samples.sort_unstable();
        Measurement {
            min: samples[0],
            median: samples[samples.len() / 2],
            mean: samples.iter().sum::<std::time::Duration>() / samples.len() as u32,
            iters: samples.len() as u64,
        }
    }

    /// JSON rendering used by `BENCH_mem.json`.
    pub fn to_json(&self) -> slime_json::Value {
        use slime_json::Value;
        slime_json::obj([
            ("min_ns", Value::Int(self.min.as_nanos() as i64)),
            ("median_ns", Value::Int(self.median.as_nanos() as i64)),
            ("mean_ns", Value::Int(self.mean.as_nanos() as i64)),
            ("iters", Value::Int(self.iters as i64)),
        ])
    }
}

/// Time `routine` with the same warmup/sampling scheme as [`Bencher::iter`]
/// and return the numbers instead of printing them inside a group.
pub fn measure_routine<O, R: FnMut() -> O>(
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut routine: R,
) -> Measurement {
    let mut b = Bencher {
        cfg: BenchConfig {
            sample_size,
            warm_up_time,
            measurement_time,
        },
        report: None,
    };
    b.iter(|| routine());
    let r = b.report.as_ref().expect("iter ran");
    Measurement {
        min: r.min,
        median: r.median,
        mean: r.mean,
        iters: r.iters,
    }
}

/// Time `routine` once per entry of `thread_counts`, capping the slime-par
/// pool before each measurement. The routine itself is unchanged across
/// points — slime-par guarantees its results are bitwise identical at every
/// thread count, so the sweep varies wall-clock time only.
pub fn thread_sweep<O, R: FnMut() -> O>(
    name: &str,
    thread_counts: &[usize],
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut routine: R,
) -> SweepResult {
    // lint-allow(raw-print): bench harness reports to the operator's terminal
    println!("\nsweep {name}");
    let mut points = Vec::with_capacity(thread_counts.len());
    for &t in thread_counts {
        slime_par::set_threads(t);
        let mut b = Bencher {
            cfg: BenchConfig {
                sample_size,
                warm_up_time,
                measurement_time,
            },
            report: None,
        };
        b.iter(|| routine());
        let r = b.report.as_ref().expect("iter ran");
        // lint-allow(raw-print): bench harness reports to the operator's terminal
        println!(
            "  {name}/threads={t:<3} min {:>12?}  median {:>12?}  mean {:>12?}  ({} iters)",
            r.min, r.median, r.mean, r.iters
        );
        points.push(SweepPoint {
            threads: t,
            min: r.min,
            median: r.median,
            mean: r.mean,
            iters: r.iters,
        });
    }
    SweepResult {
        name: name.into(),
        points,
    }
}

/// The shared environment header every `BENCH_*.json` artifact embeds
/// under `"env"`: machine parallelism and the state of each runtime knob
/// at report time. One helper instead of per-bench ad-hoc fields, so two
/// BENCH artifacts are always diffable on the same keys — `slime report
/// --baseline` and humans alike can check "same backend? same threads?
/// same fuse gate?" before reading any timing number.
pub fn env_block() -> slime_json::Value {
    use slime_json::Value;
    slime_json::obj([
        (
            "available_cores",
            Value::Int(slime_par::available_threads() as i64),
        ),
        ("threads", Value::Int(slime_par::num_threads() as i64)),
        (
            "simd_backend",
            Value::Str(slime_tensor::simd::backend().name().into()),
        ),
        (
            "avx2_fma_detected",
            Value::Bool(slime_tensor::simd::avx2_fma_detected()),
        ),
        ("pool", Value::Bool(slime_tensor::pool::enabled())),
        ("fuse", Value::Bool(slime_tensor::simd::fuse::enabled())),
        (
            "retrieval",
            match std::env::var("SLIME_RETRIEVAL") {
                Ok(v) if !v.is_empty() => Value::Str(v),
                _ => Value::Str("exact".into()),
            },
        ),
    ])
}

/// Write the sweep report consumed by the repo's perf tracking
/// (`BENCH_par.json`): machine parallelism plus every sweep's points.
pub fn write_sweep_json(
    path: impl AsRef<std::path::Path>,
    sweeps: &[SweepResult],
) -> std::io::Result<()> {
    use slime_json::Value;
    let report = slime_json::obj([
        ("bench", Value::Str("par_sweep".into())),
        ("env", env_block()),
        (
            "sweeps",
            Value::Arr(sweeps.iter().map(SweepResult::to_json).collect()),
        ),
    ]);
    std::fs::write(path, report.to_pretty() + "\n")
}

/// Collect benchmark functions into one runner (stand-in for
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the groups (stand-in for `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut ran = false;
        group.bench_function("spin", |b| {
            b.iter(|| std::hint::black_box((0..100).sum::<u64>()));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("fft", 64).label, "fft/64");
        assert_eq!(BenchmarkId::from_parameter(50).label, "50");
    }
}
