//! # slime-bench
//!
//! Criterion microbenchmarks backing the paper's complexity claims
//! (Section III-F) and the ablation benches DESIGN.md calls out:
//!
//! * `fft` — fast transforms vs the naive DFT oracle; plan reuse.
//! * `mixer_vs_attention` — filter-mixer block (O(n log n)) vs
//!   self-attention block (O(n^2 d)) forward cost across sequence lengths.
//! * `training` — end-to-end train-step and full-ranking inference
//!   throughput for SLIME4Rec, SASRec, and FMLP-Rec.
//! * `ablations` — one- vs two-branch mixers, windowed vs global masks,
//!   power-of-two vs Bluestein sequence lengths.
//!
//! Shared fixture builders live here so benches stay declarative, and the
//! [`harness`] module provides the criterion-shaped timing driver they run
//! under (offline-purity bans the real criterion crate).

pub mod harness;

use slime_data::synthetic::{generate_with_core, SyntheticConfig};
use slime_data::SeqDataset;
use slime_rng::rngs::StdRng;
use slime_rng::{Rng, SeedableRng};

/// A deterministic benchmark dataset sized for fast iteration.
pub fn bench_dataset(users: usize, seed: u64) -> SeqDataset {
    let cfg = SyntheticConfig {
        name: "bench".into(),
        users,
        clusters: 8,
        items_per_cluster: 10,
        noise_items: 20,
        min_len: 10,
        max_len: 24,
        low_period: 6,
        high_cycle: 3,
        p_high: 0.5,
        p_noise: 0.15,
    };
    generate_with_core(&cfg, seed, 0)
}

/// A flat `[batch * n]` id buffer over `vocab` items (id 0 excluded).
pub fn random_inputs(batch: usize, n: usize, vocab: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batch * n)
        .map(|_| 1 + rng.gen_range(0..vocab))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(
            bench_dataset(20, 1).sequences(),
            bench_dataset(20, 1).sequences()
        );
        assert_eq!(random_inputs(2, 4, 10, 3), random_inputs(2, 4, 10, 3));
        for v in random_inputs(2, 4, 10, 3) {
            assert!((1..=10).contains(&v));
        }
    }
}
