//! Memory-subsystem sweep: the train-step and full-ranking-inference
//! routines timed with the NdArray buffer pool off and on, plus the pool
//! hit rate after a warmup epoch and peak-RSS snapshots. Emits
//! `BENCH_mem.json` at the workspace root alongside the printed table.
//!
//! The routine is identical in both modes — pooling never changes values —
//! so the A/B isolates allocator traffic. Read the timings against
//! `available_cores` (as with `BENCH_par.json`): a single-core container
//! shows the allocator win without any parallel speedup on top.
//!
//! Peak-RSS caveat: `VmHWM` in `/proc/self/status` is a process-lifetime
//! high-water mark — it only ratchets upward. The pool-off phase therefore
//! runs first; the pool-on snapshot shows how much (if any) headroom the
//! pool adds on top of that baseline.

use slime4rec::{ContrastiveMode, NextItemModel, Slime4Rec, SlimeConfig};
use slime_bench::harness::{measure_routine, Measurement};
use slime_bench::random_inputs;
use slime_nn::{Module, TrainContext};
use slime_tensor::optim::{Adam, Optimizer};
use slime_tensor::{ops, pool};
use std::hint::black_box;
use std::time::Duration;

// Same paper-scale-ish dims as par_sweep: Beauty-sized catalog, max_len 50.
const BATCH: usize = 64;
const N: usize = 50;
const HIDDEN: usize = 64;
const VOCAB: usize = 4000;

const SAMPLES: usize = 5;
const WARM_UP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1500);

/// Warmup-epoch length used for the hit-rate measurement: enough steps for
/// the free lists to reach steady state before counters reset.
const WARMUP_STEPS: usize = 3;
const MEASURED_STEPS: usize = 5;

fn model() -> Slime4Rec {
    let mut cfg = SlimeConfig::new(VOCAB);
    cfg.hidden = HIDDEN;
    cfg.max_len = N;
    cfg.layers = 2;
    cfg.contrastive = ContrastiveMode::None;
    Slime4Rec::new(cfg)
}

fn measure_train_step() -> Measurement {
    let inputs = random_inputs(BATCH, N, VOCAB, 3);
    let targets: Vec<usize> = random_inputs(BATCH, 1, VOCAB, 4);
    let slime = model();
    let mut opt = Adam::new(slime.parameters(), 1e-3);
    let mut ctx = TrainContext::train(1);
    measure_routine(SAMPLES, WARM_UP, MEASURE, || {
        opt.zero_grad();
        let repr = slime.user_repr(black_box(&inputs), BATCH, &mut ctx);
        let loss = ops::cross_entropy(&slime.score_all(&repr), &targets);
        loss.backward();
        opt.step();
    })
}

fn measure_inference() -> Measurement {
    let inputs = random_inputs(BATCH, N, VOCAB, 5);
    let slime = model();
    measure_routine(SAMPLES, WARM_UP, MEASURE, || {
        let mut ctx = TrainContext::eval();
        let repr = slime.user_repr(black_box(&inputs), BATCH, &mut ctx);
        black_box(slime.score_all(&repr).value())
    })
}

/// Pool hit rate over a measured epoch, after `WARMUP_STEPS` of warmup have
/// populated the free lists and the counters were reset.
fn measure_hit_rate() -> pool::PoolStats {
    let inputs = random_inputs(BATCH, N, VOCAB, 7);
    let targets: Vec<usize> = random_inputs(BATCH, 1, VOCAB, 8);
    let slime = model();
    let mut opt = Adam::new(slime.parameters(), 1e-3);
    let mut ctx = TrainContext::train(1);
    let mut step = || {
        opt.zero_grad();
        let repr = slime.user_repr(&inputs, BATCH, &mut ctx);
        let loss = ops::cross_entropy(&slime.score_all(&repr), &targets);
        loss.backward();
        opt.step();
    };
    for _ in 0..WARMUP_STEPS {
        step();
    }
    pool::reset_stats();
    for _ in 0..MEASURED_STEPS {
        step();
    }
    pool::stats()
}

/// `VmHWM` (peak resident set, kB) from `/proc/self/status`; `None` off
/// Linux or if the field is missing.
fn peak_rss_kb() -> Option<i64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn print_pair(name: &str, off: &Measurement, on: &Measurement) {
    let ratio = off.median.as_secs_f64() / on.median.as_secs_f64().max(1e-12);
    println!(
        "  {name:<28} pool-off median {:>12?}   pool-on median {:>12?}   ({ratio:.2}x)",
        off.median, on.median
    );
}

fn main() {
    use slime_json::Value;

    slime_par::set_threads(1);
    println!("mem_sweep: pool off vs on at 1 thread");

    // Pool-off phase first: VmHWM only ratchets up, so the baseline
    // snapshot must precede any pooled run.
    pool::set_enabled(false);
    let train_off = measure_train_step();
    let infer_off = measure_inference();
    let rss_off = peak_rss_kb();

    pool::set_enabled(true);
    let train_on = measure_train_step();
    let infer_on = measure_inference();
    let stats = measure_hit_rate();
    let rss_on = peak_rss_kb();

    print_pair("train_step", &train_off, &train_on);
    print_pair("full_ranking_inference", &infer_off, &infer_on);
    println!(
        "  pool hit rate after warmup: {:.1}% ({} hits / {} misses, {:.1} MB reused)",
        stats.hit_rate() * 100.0,
        stats.hits,
        stats.misses,
        stats.bytes_reused as f64 / 1e6
    );

    let pair = |off: &Measurement, on: &Measurement| {
        Value::Arr(vec![
            slime_json::obj([("pool", Value::Bool(false)), ("timing", off.to_json())]),
            slime_json::obj([("pool", Value::Bool(true)), ("timing", on.to_json())]),
        ])
    };
    let report = slime_json::obj([
        ("bench", Value::Str("mem_sweep".into())),
        ("env", slime_bench::harness::env_block()),
        (
            "sweeps",
            Value::Arr(vec![
                slime_json::obj([
                    ("name", Value::Str("train_step".into())),
                    ("points", pair(&train_off, &train_on)),
                ]),
                slime_json::obj([
                    ("name", Value::Str("full_ranking_inference".into())),
                    ("points", pair(&infer_off, &infer_on)),
                ]),
            ]),
        ),
        (
            "pool_stats_after_warmup",
            slime_json::obj([
                ("hits", Value::Int(stats.hits as i64)),
                ("misses", Value::Int(stats.misses as i64)),
                ("bytes_reused", Value::Int(stats.bytes_reused as i64)),
                ("hit_rate", Value::Float(stats.hit_rate())),
            ]),
        ),
        (
            "peak_rss_kb",
            slime_json::obj([
                (
                    "after_pool_off_phase",
                    rss_off.map(Value::Int).unwrap_or(Value::Null),
                ),
                (
                    "after_pool_on_phase",
                    rss_on.map(Value::Int).unwrap_or(Value::Null),
                ),
                (
                    "note",
                    Value::Str(
                        "VmHWM is a process-lifetime high-water mark; the pool-off \
                         phase runs first, so the second snapshot shows pooled \
                         headroom on top of the unpooled baseline"
                            .into(),
                    ),
                ),
            ]),
        ),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mem.json");
    std::fs::write(out, report.to_pretty() + "\n").expect("write BENCH_mem.json");
    println!("wrote {out}");
}
