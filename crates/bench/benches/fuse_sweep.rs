//! Fusion sweep: the recorded step plan + fused SIMD epilogues (DESIGN.md
//! §14) versus the eager unfused trace, both with the dispatched SIMD
//! backend on — so the A/B isolates what *fusion* buys on top of the PR-5
//! vector kernels. Emits `BENCH_fuse.json` at the workspace root.
//!
//! Four views:
//!
//! - per-epilogue kernels: each fused op against the unfused chain it
//!   replaces, traced eagerly on both sides;
//! - plan capture vs replay: one forward trace recorded through the plan
//!   recorder against one `StepPlan::replay` of the same graph (forward
//!   only — the backward tape walk is identical either way);
//! - end-to-end train step (forward + backward + Adam) and full-ranking
//!   inference, fused fast path vs `--no-fuse` eager;
//! - the zero-allocation contract: replay must not allocate a single graph
//!   node (the `tape.nodes_allocated` counter stays flat).
//!
//! Two floors are enforced here and by `scripts/ci.sh`: train step ≥ 1.25×
//! over the unfused SIMD baseline, and zero nodes allocated per replay.
//! The floor ratio comes from an *interleaved* A/B (short alternating
//! chunks of each side) using min-of-rounds on both sides: background load
//! on a small box only ever adds time, and sequential A-then-B blocks let
//! a slow period land entirely on one side — interleaving + min makes the
//! ratio stable where sequential medians swung 0.9×–1.4× run to run.
//! For cross-PR context the report folds in the dispatched train-step and
//! inference medians from `BENCH_simd.json` when that file is present.

use slime4rec::{ContrastiveMode, NextItemModel, Slime4Rec, SlimeConfig};
use slime_bench::harness::{measure_routine, Measurement};
use slime_bench::random_inputs;
use slime_nn::{Module, TrainContext};
use slime_tensor::optim::{Adam, Optimizer};
use slime_tensor::simd::fuse;
use slime_tensor::{fusion, ops, plan, simd, NdArray, Tensor};
use std::hint::black_box;
use std::time::Duration;

// Same paper-scale-ish dims as simd_sweep, so the end-to-end rows compare
// directly with the BENCH_simd.json SIMD baseline.
const BATCH: usize = 64;
const N: usize = 50;
const HIDDEN: usize = 64;
const VOCAB: usize = 4000;

const SAMPLES: usize = 5;
const WARM_UP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1500);

const KERNEL_WARM_UP: Duration = Duration::from_millis(200);
const KERNEL_MEASURE: Duration = Duration::from_millis(500);

fn filled(shape: &[usize], seed: u64) -> NdArray {
    let n: usize = shape.iter().product();
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let data: Vec<f32> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 4.0 - 2.0
        })
        .collect();
    NdArray::from_vec(shape.to_vec(), data)
}

// --- per-epilogue kernels -------------------------------------------------

fn measure_bias_gelu(fused: bool) -> Measurement {
    // The FFN up-projection shape: [B*N, H] @ [H, H] + bias, gelu'd in the
    // output tile while it is still hot.
    let x = Tensor::constant(filled(&[BATCH * N, HIDDEN], 1));
    let w = Tensor::constant(filled(&[HIDDEN, HIDDEN], 2));
    let b = Tensor::constant(filled(&[HIDDEN], 3));
    measure_routine(SAMPLES, KERNEL_WARM_UP, KERNEL_MEASURE, || {
        if fused {
            black_box(fusion::matmul_bias_gelu(black_box(&x), &w, &b).value())
        } else {
            black_box(ops::gelu(&ops::add(&ops::matmul(black_box(&x), &w), &b)).value())
        }
    })
}

fn measure_add_layer_norm(fused: bool) -> Measurement {
    // The residual path: one pass over x + r computing mean/var/normalize
    // instead of materializing the sum first.
    let a = Tensor::constant(filled(&[BATCH * N, HIDDEN], 4));
    let b = Tensor::constant(filled(&[BATCH * N, HIDDEN], 5));
    let gamma = Tensor::constant(filled(&[HIDDEN], 6));
    let beta = Tensor::constant(filled(&[HIDDEN], 7));
    measure_routine(SAMPLES, KERNEL_WARM_UP, KERNEL_MEASURE, || {
        if fused {
            black_box(fusion::add_layer_norm(black_box(&a), &b, &gamma, &beta, 1e-5).value())
        } else {
            black_box(ops::layer_norm(&ops::add(black_box(&a), &b), &gamma, &beta, 1e-5).value())
        }
    })
}

fn measure_gate_mix(fused: bool) -> Measurement {
    // The slide-filter gate: (1-g)*dynamic + g*static in one elementwise
    // pass instead of a four-op chain.
    let yd = Tensor::constant(filled(&[BATCH * N, HIDDEN], 8));
    let ys = Tensor::constant(filled(&[BATCH * N, HIDDEN], 9));
    let g = Tensor::constant(NdArray::scalar(0.35));
    measure_routine(SAMPLES, KERNEL_WARM_UP, KERNEL_MEASURE, || {
        if fused {
            black_box(fusion::gate_mix(black_box(&yd), &ys, &g).value())
        } else {
            let om = ops::add_scalar(&ops::neg(&g), 1.0);
            black_box(ops::add(&ops::mul(black_box(&yd), &om), &ops::mul(&ys, &g)).value())
        }
    })
}

// --- end-to-end -----------------------------------------------------------

fn model() -> Slime4Rec {
    let mut cfg = SlimeConfig::new(VOCAB);
    cfg.hidden = HIDDEN;
    cfg.max_len = N;
    cfg.layers = 2;
    cfg.contrastive = ContrastiveMode::None;
    Slime4Rec::new(cfg)
}

/// Interleaved rounds of the train-step floor A/B.
const TRAIN_ROUNDS: usize = 12;
/// Steps per side per round (one chunk ≈ 100–200 ms).
const TRAIN_ITERS: usize = 3;

/// Alternate short chunks of `a` and `b` across `rounds` rounds and return
/// per-round per-iteration stats for each. Interference from background
/// load only ever *adds* time, so `min` over interleaved rounds is the
/// noise-robust estimator the floor ratio wants; a sequential A-then-B
/// measurement lets one slow period land entirely on one side.
fn measure_pair_interleaved(
    rounds: usize,
    iters_per_round: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (Measurement, Measurement) {
    // Each iteration is timed individually (tens of ms each, so the timer
    // overhead is noise): averaging a chunk would smear interference into
    // every sample, while per-iteration timing lets `min` find the genuinely
    // quiet moments on both sides.
    let mut time_chunk = |f: &mut dyn FnMut(), samples: &mut Vec<Duration>| {
        for _ in 0..iters_per_round {
            let t0 = std::time::Instant::now();
            f();
            samples.push(t0.elapsed());
        }
    };
    let mut sa = Vec::with_capacity(rounds * iters_per_round);
    let mut sb = Vec::with_capacity(rounds * iters_per_round);
    for _ in 0..rounds {
        time_chunk(&mut a, &mut sa);
        time_chunk(&mut b, &mut sb);
    }
    (Measurement::from_samples(sa), Measurement::from_samples(sb))
}

/// The train-step floor A/B: the `--no-fuse` eager baseline (re-trace every
/// step, sequential dropout) against the fused fast path (capture once,
/// replay the recorded graph, hashed dropout) — forward + backward + Adam
/// on both sides, interleaved per [`measure_pair_interleaved`]. Also
/// returns the zero-allocation count across warm replays.
fn measure_train_pair() -> (Measurement, Measurement, u64) {
    let inputs = random_inputs(BATCH, N, VOCAB, 3);
    let targets: Vec<usize> = random_inputs(BATCH, 1, VOCAB, 4);

    // Unfused eager side: traces with the gate off on every step.
    let eager_model = model();
    let mut eager_opt = Adam::new(eager_model.parameters(), 1e-3);
    let mut eager_ctx = TrainContext::train(1);

    // Fused side: capture once with the gate on, then replay — exactly what
    // the trainer does after its first batch.
    fuse::set_enabled(true);
    let slime = model();
    let mut opt = Adam::new(slime.parameters(), 1e-3);
    let mut ctx = TrainContext::train(1);
    plan::begin_capture(&inputs, &targets);
    let repr = slime.user_repr(&inputs, BATCH, &mut ctx);
    let loss = ops::cross_entropy(&slime.score_all(&repr), &targets);
    let step_plan = plan::end_capture().expect("train step must be replayable");

    // Zero-allocation contract, measured over real replays before timing.
    let before = slime_tensor::nodes_allocated();
    for _ in 0..3 {
        step_plan
            .replay(&inputs, &targets, Some(&mut ctx.rng))
            .expect("replay");
    }
    let leaked = slime_tensor::nodes_allocated() - before;

    let mut eager_step = || {
        fuse::set_enabled(false);
        eager_opt.zero_grad();
        let repr = eager_model.user_repr(black_box(&inputs), BATCH, &mut eager_ctx);
        let loss = ops::cross_entropy(&eager_model.score_all(&repr), &targets);
        loss.backward();
        eager_opt.step();
    };
    let mut replay_step = || {
        fuse::set_enabled(true);
        opt.zero_grad();
        step_plan
            .replay(black_box(&inputs), &targets, Some(&mut ctx.rng))
            .expect("replay");
        loss.backward();
        opt.step();
    };
    for _ in 0..2 {
        eager_step();
        replay_step();
    }
    let (u, f) = measure_pair_interleaved(TRAIN_ROUNDS, TRAIN_ITERS, eager_step, replay_step);
    (u, f, leaked)
}

/// Forward-only capture vs replay of the same step graph.
fn measure_capture_vs_replay() -> (Measurement, Measurement) {
    let inputs = random_inputs(BATCH, N, VOCAB, 5);
    let targets: Vec<usize> = random_inputs(BATCH, 1, VOCAB, 6);
    let slime = model();
    let mut ctx = TrainContext::train(1);

    let capture = measure_routine(SAMPLES, WARM_UP, MEASURE, || {
        plan::begin_capture(black_box(&inputs), &targets);
        let repr = slime.user_repr(&inputs, BATCH, &mut ctx);
        let loss = ops::cross_entropy(&slime.score_all(&repr), &targets);
        let p = plan::end_capture().expect("capture");
        black_box((loss.item(), p.len()))
    });

    plan::begin_capture(&inputs, &targets);
    let repr = slime.user_repr(&inputs, BATCH, &mut ctx);
    let loss = ops::cross_entropy(&slime.score_all(&repr), &targets);
    let step_plan = plan::end_capture().expect("capture");
    let replay = measure_routine(SAMPLES, WARM_UP, MEASURE, || {
        step_plan
            .replay(black_box(&inputs), &targets, Some(&mut ctx.rng))
            .expect("replay");
        black_box(loss.item())
    });
    (capture, replay)
}

fn measure_inference() -> Measurement {
    let inputs = random_inputs(BATCH, N, VOCAB, 7);
    let slime = model();
    measure_routine(SAMPLES, WARM_UP, MEASURE, || {
        let mut ctx = TrainContext::eval();
        let repr = slime.user_repr(black_box(&inputs), BATCH, &mut ctx);
        black_box(slime.score_all(&repr).value())
    })
}

// --- report ---------------------------------------------------------------

fn ratio(unfused: &Measurement, fused: &Measurement) -> f64 {
    unfused.median.as_secs_f64() / fused.median.as_secs_f64().max(1e-12)
}

fn print_pair(name: &str, unfused: &Measurement, fused: &Measurement) {
    println!(
        "  {name:<28} unfused median {:>12?}   fused median {:>12?}   ({:.2}x)",
        unfused.median,
        fused.median,
        ratio(unfused, fused)
    );
}

/// The dispatched (simd=true) median for `name` from `BENCH_simd.json`, if
/// the PR-5 sweep output is present with the expected shape.
fn bench_simd_median_ns(report: Option<&slime_json::Value>, name: &str) -> Option<i64> {
    let rows = report?.get("end_to_end")?.as_arr()?;
    let entry = rows
        .iter()
        .find(|s| s.get("name").and_then(|n| n.as_str()) == Some(name))?;
    let point = entry
        .get("points")?
        .as_arr()?
        .iter()
        .find(|p| p.get("simd").and_then(|b| b.as_bool()) == Some(true))?;
    point.get("timing")?.get("median_ns")?.as_i64()
}

fn main() {
    use slime_json::Value;

    slime_par::set_threads(1);
    let simd_was = simd::enabled();
    let fuse_was = fuse::enabled();
    simd::set_enabled(true);
    println!(
        "fuse_sweep: unfused vs fused at 1 thread, backend {}",
        simd::backend().name()
    );

    // Per-epilogue kernels (both sides trace eagerly; only the op differs).
    fuse::set_enabled(true);
    let bg_u = measure_bias_gelu(false);
    let bg_f = measure_bias_gelu(true);
    let ln_u = measure_add_layer_norm(false);
    let ln_f = measure_add_layer_norm(true);
    let gm_u = measure_gate_mix(false);
    let gm_f = measure_gate_mix(true);

    // End-to-end: fuse off = eager unfused SIMD baseline; fuse on = fused
    // epilogues + recorded-plan replay. The train pair interleaves its own
    // A/B rounds (each closure sets the gate it needs).
    let (train_u, train_f, leaked_nodes) = measure_train_pair();
    fuse::set_enabled(false);
    let infer_u = measure_inference();
    fuse::set_enabled(true);
    let infer_f = measure_inference();
    let (capture, replay) = measure_capture_vs_replay();
    let plan_stats = plan::stats();

    simd::set_enabled(simd_was);
    fuse::set_enabled(fuse_was);

    print_pair("matmul_bias_gelu", &bg_u, &bg_f);
    print_pair("add_layer_norm", &ln_u, &ln_f);
    print_pair("gate_mix", &gm_u, &gm_f);
    print_pair("train_step", &train_u, &train_f);
    print_pair("full_ranking_inference", &infer_u, &infer_f);
    print_pair("forward_capture_vs_replay", &capture, &replay);
    println!("  nodes allocated across 3 replays: {leaked_nodes}");

    // Floor ratio from min-of-interleaved-rounds on each side — the
    // noise-robust estimator (see the header comment); medians above are
    // for the report only.
    let train_speedup = train_u.min.as_secs_f64() / train_f.min.as_secs_f64().max(1e-12);
    println!("  train_step floor ratio (min-of-rounds): {train_speedup:.2}x");
    let floors_ok = train_speedup >= 1.25 && leaked_nodes == 0;

    let simd_report = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_simd.json"
    ))
    .ok()
    .and_then(|s| slime_json::parse(&s).ok());

    let pair = |name: &str, unfused: &Measurement, fused: &Measurement| {
        slime_json::obj([
            ("name", Value::Str(name.into())),
            (
                "points",
                Value::Arr(vec![
                    slime_json::obj([("fused", Value::Bool(false)), ("timing", unfused.to_json())]),
                    slime_json::obj([("fused", Value::Bool(true)), ("timing", fused.to_json())]),
                ]),
            ),
            ("speedup_vs_unfused", Value::Float(ratio(unfused, fused))),
        ])
    };
    let end_to_end = |name: &str, unfused: &Measurement, fused: &Measurement| {
        let prior = bench_simd_median_ns(simd_report.as_ref(), name);
        slime_json::obj([
            ("name", Value::Str(name.into())),
            (
                "points",
                Value::Arr(vec![
                    slime_json::obj([("fused", Value::Bool(false)), ("timing", unfused.to_json())]),
                    slime_json::obj([("fused", Value::Bool(true)), ("timing", fused.to_json())]),
                ]),
            ),
            ("speedup_vs_unfused", Value::Float(ratio(unfused, fused))),
            (
                "vs_bench_simd",
                match prior {
                    Some(prior_ns) => slime_json::obj([
                        ("dispatched_median_ns", Value::Int(prior_ns)),
                        (
                            "speedup_vs_bench_simd",
                            Value::Float(
                                prior_ns as f64 / (fused.median.as_nanos() as f64).max(1.0),
                            ),
                        ),
                    ]),
                    None => Value::Null,
                },
            ),
        ])
    };

    let report = slime_json::obj([
        ("bench", Value::Str("fuse_sweep".into())),
        ("env", slime_bench::harness::env_block()),
        (
            "detected",
            slime_json::obj([
                ("avx2_fma", Value::Bool(simd::avx2_fma_detected())),
                (
                    "dispatched_backend",
                    Value::Str(simd::backend().name().into()),
                ),
            ]),
        ),
        (
            "epilogues",
            Value::Arr(vec![
                pair("matmul_bias_gelu", &bg_u, &bg_f),
                pair("add_layer_norm", &ln_u, &ln_f),
                pair("gate_mix", &gm_u, &gm_f),
            ]),
        ),
        (
            "end_to_end",
            Value::Arr(vec![
                end_to_end("train_step", &train_u, &train_f),
                end_to_end("full_ranking_inference", &infer_u, &infer_f),
            ]),
        ),
        (
            "plan",
            slime_json::obj([
                ("forward_capture", capture.to_json()),
                ("forward_replay", replay.to_json()),
                ("replay_speedup", Value::Float(ratio(&capture, &replay))),
                ("captures", Value::Int(plan_stats.captures as i64)),
                ("replays", Value::Int(plan_stats.replays as i64)),
                (
                    "nodes_allocated_across_replays",
                    Value::Int(leaked_nodes as i64),
                ),
            ]),
        ),
        (
            "floors",
            slime_json::obj([
                ("train_step_speedup_min", Value::Float(1.25)),
                ("train_step_speedup", Value::Float(train_speedup)),
                ("replay_nodes_allocated_max", Value::Int(0)),
                ("passed", Value::Bool(floors_ok)),
            ]),
        ),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fuse.json");
    std::fs::write(out, report.to_pretty() + "\n").expect("write BENCH_fuse.json");
    println!("wrote {out}");

    assert!(
        floors_ok,
        "fuse_sweep floors failed: train step {train_speedup:.2}x (need >= 1.25x) \
         or replay allocated {leaked_nodes} nodes (need 0)"
    );
}
