//! Lint throughput guard: the full workspace `slime-lint` check — scan,
//! symbol table, call graph, and every rule — timed end to end against the
//! real repository. Emits `BENCH_lint.json` at the workspace root and FAILS
//! if a cold check exceeds the budget.
//!
//! The lint runs on every `scripts/ci.sh` invocation and is meant to be
//! cheap enough that nobody is tempted to skip it, so the budget is a wall
//! clock ceiling, not a throughput target: a full-workspace check (146-ish
//! files, ~11k call edges) must finish in under 2 seconds even on a noisy
//! CI container. In practice it is tens of milliseconds.
//!
//! Each sample re-discovers the workspace from disk so the measurement
//! matches what `cargo run -p slime-lint -- check` actually pays (file IO
//! included), then re-runs the analysis; the per-rule split from the last
//! sample is exported so regressions can be pinned to a phase (scan+graph
//! vs an individual rule) without re-profiling.

use slime_lint::rules::{run_all_timed, GraphStats, RuleTiming};
use slime_lint::workspace::Workspace;
use std::hint::black_box;
use std::path::Path;
use std::time::{Duration, Instant};

const SAMPLES: usize = 5;
const MAX_FULL_CHECK_MS: f64 = 2000.0;

struct Sample {
    total: Duration,
    discover: Duration,
    findings: usize,
    timings: Vec<RuleTiming>,
    stats: GraphStats,
}

fn run_once(root: &Path) -> Sample {
    let start = Instant::now();
    let ws = Workspace::discover(root).expect("workspace discovery");
    let discover = start.elapsed();
    let (findings, timings, stats) = run_all_timed(black_box(&ws));
    let total = start.elapsed();
    Sample {
        total,
        discover,
        findings: findings.len(),
        timings,
        stats,
    }
}

fn main() {
    use slime_json::Value;

    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    println!("lint_bench: full-workspace slime-lint check, {SAMPLES} cold samples");

    let samples: Vec<Sample> = (0..SAMPLES).map(|_| run_once(root)).collect();
    let best = samples
        .iter()
        .min_by_key(|s| s.total)
        .expect("at least one sample");
    let worst_ms = samples
        .iter()
        .map(|s| s.total.as_secs_f64() * 1e3)
        .fold(0.0, f64::max);
    let best_ms = best.total.as_secs_f64() * 1e3;

    for (i, s) in samples.iter().enumerate() {
        println!(
            "  sample {i}: total {:>9.2?}  (discover {:>9.2?})  {} findings",
            s.total, s.discover, s.findings
        );
    }
    println!(
        "  {} files, {} fns, {} edges, {} hot roots, {} reachable",
        best.stats.files,
        best.stats.functions,
        best.stats.edges,
        best.stats.hot_roots,
        best.stats.reachable_fns
    );
    for t in &best.timings {
        println!("    {:<24} {:>8.2} ms", t.rule, t.ms);
    }

    let report = slime_json::obj([
        ("bench", Value::Str("lint_bench".into())),
        ("env", slime_bench::harness::env_block()),
        ("samples", Value::Int(SAMPLES as i64)),
        ("best_total_ms", Value::Float(best_ms)),
        ("worst_total_ms", Value::Float(worst_ms)),
        (
            "best_discover_ms",
            Value::Float(best.discover.as_secs_f64() * 1e3),
        ),
        ("findings", Value::Int(best.findings as i64)),
        (
            "graph",
            slime_json::obj([
                ("files", Value::Int(best.stats.files as i64)),
                ("functions", Value::Int(best.stats.functions as i64)),
                ("edges", Value::Int(best.stats.edges as i64)),
                ("hot_roots", Value::Int(best.stats.hot_roots as i64)),
                ("reachable_fns", Value::Int(best.stats.reachable_fns as i64)),
            ]),
        ),
        (
            "rule_timings_ms",
            Value::Arr(
                best.timings
                    .iter()
                    .map(|t| {
                        slime_json::obj([
                            ("rule", Value::Str(t.rule.into())),
                            ("ms", Value::Float(t.ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "budgets",
            slime_json::obj([("max_full_check_ms", Value::Float(MAX_FULL_CHECK_MS))]),
        ),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lint.json");
    std::fs::write(out, report.to_pretty() + "\n").expect("write BENCH_lint.json");
    println!("wrote {out}");

    // Gate on the WORST sample: the promise is "every ci.sh run stays under
    // budget", not "the machine can occasionally manage it".
    assert!(
        worst_ms < MAX_FULL_CHECK_MS,
        "full-workspace lint check took {worst_ms:.1} ms (budget {MAX_FULL_CHECK_MS} ms)"
    );
    println!("  within budget: worst sample {worst_ms:.1} ms < {MAX_FULL_CHECK_MS} ms");
}
