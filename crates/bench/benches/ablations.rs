//! Ablation benches for the design choices DESIGN.md calls out:
//! one vs two filter branches, windowed vs global masks, and
//! power-of-two vs Bluestein (odd-length) sequence costs.

use slime4rec::{ContrastiveMode, NextItemModel, Slime4Rec, SlimeConfig};
use slime_bench::harness::{BenchmarkId, Criterion};
use slime_bench::{criterion_group, criterion_main};
use slime_nn::TrainContext;
use slime_tensor::{ops, NdArray, Tensor};
use std::hint::black_box;

const BATCH: usize = 16;
const HIDDEN: usize = 32;

fn input(n: usize) -> Tensor {
    let data: Vec<f32> = (0..BATCH * n * HIDDEN)
        .map(|i| (i as f32 * 0.137).sin())
        .collect();
    Tensor::param(NdArray::from_vec(vec![BATCH, n, HIDDEN], data))
}

fn branch(m: usize, mask: Vec<f32>, coef: f32) -> ops::SpectralBranch {
    ops::SpectralBranch {
        w_re: Tensor::param(NdArray::full(vec![m, HIDDEN], 0.02)),
        w_im: Tensor::param(NdArray::full(vec![m, HIDDEN], 0.01)),
        mask,
        coef,
    }
}

fn bench_branch_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral_branch_count");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 50;
    let m = n / 2 + 1;
    let x = input(n);
    let one = [branch(m, vec![1.0; m], 1.0)];
    let two = [branch(m, vec![1.0; m], 0.5), branch(m, vec![1.0; m], 0.5)];
    group.bench_function("one_branch", |b| {
        b.iter(|| black_box(ops::spectral_filter_mix(black_box(&x), &one)))
    });
    group.bench_function("two_branches_dfs_plus_sfs", |b| {
        b.iter(|| black_box(ops::spectral_filter_mix(black_box(&x), &two)))
    });
    group.finish();
}

fn bench_mask_width(c: &mut Criterion) {
    // Windowed masks skip work in the filter application; global masks are
    // the FMLP configuration. The FFT dominates, so the gap should be small
    // — that is itself the finding worth recording.
    let mut group = c.benchmark_group("mask_width");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 50;
    let m = n / 2 + 1;
    let x = input(n);
    let mut narrow = vec![0.0f32; m];
    for v in narrow.iter_mut().take(m / 5) {
        *v = 1.0;
    }
    let global = [branch(m, vec![1.0; m], 1.0)];
    let windowed = [branch(m, narrow, 1.0)];
    group.bench_function("global_mask_alpha_1", |b| {
        b.iter(|| black_box(ops::spectral_filter_mix(black_box(&x), &global)))
    });
    group.bench_function("windowed_mask_alpha_0.2", |b| {
        b.iter(|| black_box(ops::spectral_filter_mix(black_box(&x), &windowed)))
    });
    group.finish();
}

fn bench_sequence_length_kind(c: &mut Criterion) {
    // Powers of two use the radix-2 path; other lengths go through
    // Bluestein's algorithm with a larger internal transform.
    let mut group = c.benchmark_group("fft_length_kind");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [32usize, 50, 64, 100, 128] {
        let m = n / 2 + 1;
        let x = input(n);
        let br = [branch(m, vec![1.0; m], 1.0)];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(ops::spectral_filter_mix(black_box(&x), &br)))
        });
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral_backward");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 50;
    let m = n / 2 + 1;
    group.bench_function("forward_plus_backward", |b| {
        b.iter(|| {
            let x = input(n);
            let br = [branch(m, vec![1.0; m], 1.0)];
            let y = ops::spectral_filter_mix(&x, &br);
            ops::mean_all(&ops::mul(&y, &y)).backward();
            black_box(x.grad())
        })
    });
    group.finish();
}

fn bench_learnable_gamma(c: &mut Criterion) {
    // Fixed gamma uses the fused two-branch op; learnable gamma runs each
    // branch separately and mixes in-graph (one extra FFT/iFFT pair per
    // block). This bench records the cost of the extension.
    let mut group = c.benchmark_group("gamma_mode");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let build = |learnable: bool| {
        let mut cfg = SlimeConfig::new(200);
        cfg.hidden = HIDDEN;
        cfg.max_len = 20;
        cfg.layers = 2;
        cfg.contrastive = ContrastiveMode::None;
        cfg.learnable_gamma = learnable;
        Slime4Rec::new(cfg)
    };
    let inputs = slime_bench::random_inputs(BATCH, 20, 200, 9);
    let fixed = build(false);
    group.bench_function("fixed_gamma_fused", |b| {
        b.iter(|| {
            let mut ctx = TrainContext::eval();
            black_box(fixed.user_repr(black_box(&inputs), BATCH, &mut ctx))
        })
    });
    let learn = build(true);
    group.bench_function("learnable_gamma_two_pass", |b| {
        b.iter(|| {
            let mut ctx = TrainContext::eval();
            black_box(learn.user_repr(black_box(&inputs), BATCH, &mut ctx))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_branch_count,
    bench_mask_width,
    bench_sequence_length_kind,
    bench_backward,
    bench_learnable_gamma
);
criterion_main!(benches);
