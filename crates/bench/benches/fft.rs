//! FFT benchmarks: fast transforms vs the naive DFT oracle, real FFTs, and
//! plan reuse, across the sequence lengths the paper searches
//! ({25, 50, 75, 100}) plus powers of two.

use slime_bench::harness::{BenchmarkId, Criterion};
use slime_bench::{criterion_group, criterion_main};
use slime_fft::{dft, fft, rfft, Complex32, FftPlan};
use std::hint::black_box;

fn signal(n: usize) -> Vec<Complex32> {
    (0..n)
        .map(|i| Complex32::new((i as f32 * 0.31).sin(), (i as f32 * 0.17).cos()))
        .collect()
}

fn bench_fft_vs_dft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_vs_naive_dft");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [25usize, 50, 64, 100, 128] {
        let x = signal(n);
        group.bench_with_input(BenchmarkId::new("fft", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = x.clone();
                fft(black_box(&mut buf));
                buf
            })
        });
        group.bench_with_input(BenchmarkId::new("naive_dft", n), &n, |b, _| {
            b.iter(|| dft(black_box(&x)))
        });
    }
    group.finish();
}

fn bench_rfft(c: &mut Criterion) {
    let mut group = c.benchmark_group("rfft");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [25usize, 50, 75, 100] {
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| rfft(black_box(&x)))
        });
    }
    group.finish();
}

fn bench_plan_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_reuse");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 50;
    let x = signal(n);
    group.bench_function("fresh_plan_per_call", |b| {
        b.iter(|| {
            let plan = FftPlan::new(n);
            let mut buf = x.clone();
            plan.forward(&mut buf);
            buf
        })
    });
    let plan = FftPlan::new(n);
    group.bench_function("reused_plan", |b| {
        b.iter(|| {
            let mut buf = x.clone();
            plan.forward(&mut buf);
            buf
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fft_vs_dft, bench_rfft, bench_plan_reuse);
criterion_main!(benches);
