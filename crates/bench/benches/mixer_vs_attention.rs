//! The paper's complexity claim (Section III-F): the filter mixer costs
//! O(n log n) per layer where self-attention costs O(n^2 d). This bench
//! sweeps the sequence length n at fixed batch and hidden size and times
//! one forward pass of each block family — the crossover and growth rates
//! are the quantities of interest.

use slime4rec::{ContrastiveMode, NextItemModel, Slime4Rec, SlimeConfig};
use slime_baselines::{EncoderConfig, TransformerRec};
use slime_bench::harness::{BenchmarkId, Criterion};
use slime_bench::random_inputs;
use slime_bench::{criterion_group, criterion_main};
use slime_nn::TrainContext;
use std::hint::black_box;

const BATCH: usize = 16;
const HIDDEN: usize = 32;
const VOCAB: usize = 200;

fn slime_model(n: usize) -> Slime4Rec {
    let mut cfg = SlimeConfig::new(VOCAB);
    cfg.hidden = HIDDEN;
    cfg.max_len = n;
    cfg.layers = 2;
    cfg.alpha = 0.4;
    cfg.dropout_emb = 0.0;
    cfg.dropout_block = 0.0;
    cfg.contrastive = ContrastiveMode::None;
    Slime4Rec::new(cfg)
}

fn sasrec_model(n: usize) -> TransformerRec {
    TransformerRec::sasrec(EncoderConfig {
        num_items: VOCAB,
        hidden: HIDDEN,
        max_len: n,
        layers: 2,
        heads: 2,
        dropout: 0.0,
        noise_eps: 0.0,
        seed: 1,
    })
}

fn bench_forward_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_scaling_in_n");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [16usize, 32, 64, 128] {
        let inputs = random_inputs(BATCH, n, VOCAB, 7);
        let slime = slime_model(n);
        group.bench_with_input(BenchmarkId::new("filter_mixer", n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = TrainContext::eval();
                black_box(slime.user_repr(black_box(&inputs), BATCH, &mut ctx))
            })
        });
        let sasrec = sasrec_model(n);
        group.bench_with_input(BenchmarkId::new("self_attention", n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = TrainContext::eval();
                black_box(sasrec.user_repr(black_box(&inputs), BATCH, &mut ctx))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward_scaling);
criterion_main!(benches);
