//! End-to-end throughput: one optimizer step (forward + backward + Adam)
//! and full-ranking inference, for SLIME4Rec vs SASRec vs FMLP-Rec.

use slime4rec::{ContrastiveMode, NextItemModel, Slime4Rec, SlimeConfig};
use slime_baselines::{fmlp_config, EncoderConfig, TransformerRec};
use slime_bench::harness::Criterion;
use slime_bench::random_inputs;
use slime_bench::{criterion_group, criterion_main};
use slime_nn::{Module, TrainContext};
use slime_tensor::ops;
use slime_tensor::optim::{Adam, Optimizer};
use std::hint::black_box;

const BATCH: usize = 32;
const N: usize = 20;
const HIDDEN: usize = 32;
const VOCAB: usize = 300;

fn train_step<M: NextItemModel>(
    model: &M,
    opt: &mut Adam,
    inputs: &[usize],
    targets: &[usize],
    ctx: &mut TrainContext,
) {
    opt.zero_grad();
    let repr = model.user_repr(inputs, BATCH, ctx);
    let loss = ops::cross_entropy(&model.score_all(&repr), targets);
    loss.backward();
    opt.step();
}

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let inputs = random_inputs(BATCH, N, VOCAB, 3);
    let targets: Vec<usize> = random_inputs(BATCH, 1, VOCAB, 4);

    let mut slime_cfg = SlimeConfig::new(VOCAB);
    slime_cfg.hidden = HIDDEN;
    slime_cfg.max_len = N;
    slime_cfg.contrastive = ContrastiveMode::None;
    let slime = Slime4Rec::new(slime_cfg);
    let mut slime_opt = Adam::new(slime.parameters(), 1e-3);
    group.bench_function("slime4rec", |b| {
        let mut ctx = TrainContext::train(1);
        b.iter(|| {
            train_step(
                &slime,
                &mut slime_opt,
                black_box(&inputs),
                &targets,
                &mut ctx,
            )
        })
    });

    let sasrec = TransformerRec::sasrec(EncoderConfig {
        num_items: VOCAB,
        hidden: HIDDEN,
        max_len: N,
        layers: 2,
        heads: 2,
        dropout: 0.2,
        noise_eps: 0.0,
        seed: 1,
    });
    let mut sasrec_opt = Adam::new(sasrec.parameters(), 1e-3);
    group.bench_function("sasrec", |b| {
        let mut ctx = TrainContext::train(1);
        b.iter(|| {
            train_step(
                &sasrec,
                &mut sasrec_opt,
                black_box(&inputs),
                &targets,
                &mut ctx,
            )
        })
    });

    let fmlp = Slime4Rec::new(fmlp_config(VOCAB, HIDDEN, N, 2, 0.2, 1));
    let mut fmlp_opt = Adam::new(fmlp.parameters(), 1e-3);
    group.bench_function("fmlp", |b| {
        let mut ctx = TrainContext::train(1);
        b.iter(|| train_step(&fmlp, &mut fmlp_opt, black_box(&inputs), &targets, &mut ctx))
    });
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_ranking_inference");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let inputs = random_inputs(BATCH, N, VOCAB, 5);
    let mut cfg = SlimeConfig::new(VOCAB);
    cfg.hidden = HIDDEN;
    cfg.max_len = N;
    cfg.contrastive = ContrastiveMode::None;
    let slime = Slime4Rec::new(cfg);
    group.bench_function("slime4rec_score_all", |b| {
        b.iter(|| {
            let mut ctx = TrainContext::eval();
            let repr = slime.user_repr(black_box(&inputs), BATCH, &mut ctx);
            black_box(slime.score_all(&repr).value())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_train_step, bench_inference);
criterion_main!(benches);
