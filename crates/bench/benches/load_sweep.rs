//! End-to-end load harness for the slime-serve daemon. Emits
//! `BENCH_serve.json` at the workspace root.
//!
//! Two experiments, both against a seeded (untrained) SLIME4Rec model so
//! the numbers are reproducible across boots without shipping artifacts:
//!
//! - **batched vs unbatched A/B** (closed loop, 8 clients): the same
//!   client fleet hammers a `max_batch = 32` daemon and a `max_batch = 1`
//!   daemon, alternating boots so machine noise hits both arms. The
//!   cross-request micro-batcher must win: `batched_qps >= 1.05 x
//!   unbatched_qps` is the CI floor (also enforced by `scripts/ci.sh`).
//! - **open-loop latency sweep**: clients fire on a fixed schedule at
//!   fractions of the measured batched capacity, and latency is measured
//!   from the *scheduled* arrival time (anti-coordinated-omission), giving
//!   honest p50/p99/p999 under load plus reject rate and batch occupancy.
//!
//! All requests are ragged synthetic histories (ids in `1..vocab`), half
//! with exclude-history on, exercising the no-padding-copy serving path.

use slime4rec::{ContrastiveMode, Slime4Rec, SlimeConfig};
use slime_serve::load::{run_load, LoadConfig, LoadReport};
use slime_serve::{ModelEngine, RecEngine, ServeConfig, Server, StatsSnapshot};
use std::time::Duration;

/// Catalog size. Large enough (6.4 MB embedding table at hidden 32) that
/// full-catalog scoring dominates the forward pass: the nt-kernel packs
/// the item table once per engine pass, so a batch of 8 streams and packs
/// it once where 8 unbatched passes do it 8 times — the concrete
/// mechanism behind the batched-over-unbatched floor on a 1-core box.
const VOCAB_ITEMS: usize = 50_000;
const CLIENTS: usize = 8;
const AB_REQUESTS_PER_CLIENT: usize = 64;
const AB_REPS: usize = 3;
const BATCHED_OVER_UNBATCHED_MIN: f64 = 1.05;
/// Open-loop points as fractions of the measured batched closed-loop QPS.
const OPEN_LOOP_FRACTIONS: &[f64] = &[0.25, 0.5, 0.75];

/// Boot a daemon around a freshly seeded model. Seeded init means every
/// boot serves identical weights, so A/B arms differ only in batching
/// policy.
fn boot(max_batch: usize, linger_us: u64) -> Server {
    Server::start(
        ServeConfig {
            port: 0,
            workers: 0,
            max_batch,
            linger_us,
            queue_cap: 1024,
        },
        move || {
            let mut cfg = SlimeConfig::small(VOCAB_ITEMS);
            cfg.hidden = 32;
            cfg.max_len = 20;
            cfg.layers = 2;
            cfg.contrastive = ContrastiveMode::None;
            let model = Slime4Rec::new(cfg);
            Box::new(ModelEngine::new(model, None)) as Box<dyn RecEngine>
        },
    )
    .expect("daemon boots")
}

fn load_cfg(server: &Server, requests_per_client: usize, target_qps: f64) -> LoadConfig {
    LoadConfig {
        addr: server.addr(),
        clients: CLIENTS,
        requests_per_client,
        target_qps,
        k: 10,
        exclude: false,
        vocab: 0, // ping-discover
        hist_len: 16,
        ..LoadConfig::default()
    }
}

struct Run {
    report: LoadReport,
    stats: StatsSnapshot,
}

/// One closed-loop run against a fresh daemon with the given policy.
fn closed_loop_run(max_batch: usize, linger_us: u64) -> Run {
    let server = boot(max_batch, linger_us);
    let report = run_load(&load_cfg(&server, AB_REQUESTS_PER_CLIENT, 0.0)).expect("load run");
    let stats = server.stats();
    server.shutdown();
    Run { report, stats }
}

fn open_loop_run(server: &Server, target_qps: f64) -> Run {
    // Enough traffic for the tail quantiles without letting slow boxes
    // stretch a low-rate point past a few seconds.
    let total = ((target_qps * 2.0) as usize).clamp(256, 1024);
    let per_client = total.div_ceil(CLIENTS);
    let report = run_load(&load_cfg(server, per_client, target_qps)).expect("load run");
    Run {
        report,
        stats: server.stats(),
    }
}

fn mean_occupancy(s: &StatsSnapshot) -> f64 {
    s.batched_requests as f64 / (s.batches as f64).max(1.0)
}

fn run_json(r: &Run) -> slime_json::Value {
    use slime_json::Value;
    slime_json::obj([
        ("sent", Value::Int(r.report.sent as i64)),
        ("ok", Value::Int(r.report.ok as i64)),
        ("rejected", Value::Int(r.report.rejected as i64)),
        ("errors", Value::Int(r.report.errors as i64)),
        ("wall_s", Value::Float(r.report.wall_s)),
        ("qps", Value::Float(r.report.qps)),
        ("p50_us", Value::Int(r.report.quantile_us(0.50) as i64)),
        ("p99_us", Value::Int(r.report.quantile_us(0.99) as i64)),
        ("p999_us", Value::Int(r.report.quantile_us(0.999) as i64)),
        (
            "reject_rate",
            Value::Float(r.report.rejected as f64 / (r.report.sent as f64).max(1.0)),
        ),
        (
            "mean_batch_occupancy",
            Value::Float(mean_occupancy(&r.stats)),
        ),
        (
            "max_batch_occupancy",
            Value::Int(r.stats.max_occupancy as i64),
        ),
        (
            "max_queue_depth",
            Value::Int(r.stats.max_queue_depth as i64),
        ),
    ])
}

fn main() {
    use slime_json::Value;

    slime_tensor::pool::set_enabled(true);
    println!(
        "load_sweep: slime-serve daemon, vocab {VOCAB_ITEMS}, {CLIENTS} clients, {} cores",
        slime_par::available_threads()
    );

    // --- Batched vs unbatched A/B, alternating boots -----------------------
    // Best-of-reps per arm: interference only ever subtracts throughput, so
    // the max over alternated runs is the stable basis for the ratio.
    let mut unbatched: Option<Run> = None;
    let mut batched: Option<Run> = None;
    for rep in 0..AB_REPS {
        let u = closed_loop_run(1, 0);
        let b = closed_loop_run(32, 300);
        println!(
            "  rep {rep}: unbatched {:>8.0} qps (p99 {:>7} us)   batched {:>8.0} qps \
             (p99 {:>7} us, mean occupancy {:.1}, max {})",
            u.report.qps,
            u.report.quantile_us(0.99),
            b.report.qps,
            b.report.quantile_us(0.99),
            mean_occupancy(&b.stats),
            b.stats.max_occupancy,
        );
        if unbatched
            .as_ref()
            .is_none_or(|best| u.report.qps > best.report.qps)
        {
            unbatched = Some(u);
        }
        if batched
            .as_ref()
            .is_none_or(|best| b.report.qps > best.report.qps)
        {
            batched = Some(b);
        }
    }
    let unbatched = unbatched.expect("at least one rep");
    let batched = batched.expect("at least one rep");
    let speedup = batched.report.qps / unbatched.report.qps.max(1e-9);
    println!(
        "  A/B: batched {:.0} qps vs unbatched {:.0} qps = {speedup:.2}x",
        batched.report.qps, unbatched.report.qps
    );

    let mut floors_ok = true;
    floors_ok &= speedup >= BATCHED_OVER_UNBATCHED_MIN;
    floors_ok &= batched.report.errors == 0 && unbatched.report.errors == 0;
    floors_ok &= batched.stats.max_occupancy > 1;

    // --- Open-loop latency sweep against one batched daemon ----------------
    let server = boot(32, 300);
    let mut points = Vec::new();
    for &frac in OPEN_LOOP_FRACTIONS {
        let rate = (batched.report.qps * frac).max(50.0);
        let run = open_loop_run(&server, rate);
        println!(
            "  open loop {:>7.0} qps target: {:>8.0} qps served, p50 {:>6} us, \
             p99 {:>7} us, p999 {:>7} us, rejected {}",
            rate,
            run.report.qps,
            run.report.quantile_us(0.50),
            run.report.quantile_us(0.99),
            run.report.quantile_us(0.999),
            run.report.rejected,
        );
        floors_ok &= run.report.errors == 0;
        points.push(slime_json::obj([
            ("target_qps", Value::Float(rate)),
            ("target_fraction_of_batched_capacity", Value::Float(frac)),
            ("run", run_json(&run)),
        ]));
        // Let the daemon fully drain between points so each point's
        // occupancy/depth highwater reflects its own rate.
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();

    let report = slime_json::obj([
        ("bench", Value::Str("load_sweep".into())),
        ("env", slime_bench::harness::env_block()),
        (
            "config",
            slime_json::obj([
                ("vocab_items", Value::Int(VOCAB_ITEMS as i64)),
                ("clients", Value::Int(CLIENTS as i64)),
                ("hist_len", Value::Int(16)),
                ("k", Value::Int(10)),
                ("batched_max_batch", Value::Int(32)),
                ("batched_linger_us", Value::Int(300)),
            ]),
        ),
        (
            "floors",
            slime_json::obj([
                (
                    "batched_over_unbatched_min",
                    Value::Float(BATCHED_OVER_UNBATCHED_MIN),
                ),
                ("zero_errors", Value::Bool(true)),
                ("max_occupancy_above_1", Value::Bool(true)),
                ("passed", Value::Bool(floors_ok)),
            ]),
        ),
        (
            "closed_loop_ab",
            slime_json::obj([
                ("unbatched", run_json(&unbatched)),
                ("batched", run_json(&batched)),
                ("batched_over_unbatched", Value::Float(speedup)),
            ]),
        ),
        ("open_loop", Value::Arr(points)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out, report.to_pretty() + "\n").expect("write BENCH_serve.json");
    println!("wrote {out}");
    assert!(
        floors_ok,
        "load_sweep floors failed: batched >= {BATCHED_OVER_UNBATCHED_MIN}x unbatched \
         at {CLIENTS} clients, zero transport/engine errors, and max batch \
         occupancy > 1 (see BENCH_serve.json)"
    );
}
