//! Threads-vs-throughput sweep over the slime-par-parallelized hot paths:
//! a full optimizer step (embedding forward/backward, spectral filter
//! forward/backward, matmul, full-catalog cross-entropy) and full-ranking
//! inference, at paper-ish scale. Emits `BENCH_par.json` at the workspace
//! root alongside the printed table.
//!
//! The routine is identical at every thread count — slime-par's fixed chunk
//! grids make the results bitwise identical — so the sweep isolates
//! wall-clock scaling.

use slime4rec::{ContrastiveMode, NextItemModel, Slime4Rec, SlimeConfig};
use slime_bench::harness::{thread_sweep, write_sweep_json, SweepResult};
use slime_bench::random_inputs;
use slime_nn::{Module, TrainContext};
use slime_tensor::ops;
use slime_tensor::optim::{Adam, Optimizer};
use std::hint::black_box;
use std::time::Duration;

// Paper-scale-ish dims: Amazon Beauty-sized catalog, max_len 50, hidden 64.
const BATCH: usize = 64;
const N: usize = 50;
const HIDDEN: usize = 64;
const VOCAB: usize = 4000;

const THREADS: &[usize] = &[1, 2, 4];
const SAMPLES: usize = 5;
const WARM_UP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1500);

fn model() -> Slime4Rec {
    let mut cfg = SlimeConfig::new(VOCAB);
    cfg.hidden = HIDDEN;
    cfg.max_len = N;
    cfg.layers = 2;
    cfg.contrastive = ContrastiveMode::None;
    Slime4Rec::new(cfg)
}

fn sweep_train_step() -> SweepResult {
    let inputs = random_inputs(BATCH, N, VOCAB, 3);
    let targets: Vec<usize> = random_inputs(BATCH, 1, VOCAB, 4);
    let slime = model();
    let mut opt = Adam::new(slime.parameters(), 1e-3);
    let mut ctx = TrainContext::train(1);
    thread_sweep("train_step", THREADS, SAMPLES, WARM_UP, MEASURE, || {
        opt.zero_grad();
        let repr = slime.user_repr(black_box(&inputs), BATCH, &mut ctx);
        let loss = ops::cross_entropy(&slime.score_all(&repr), &targets);
        loss.backward();
        opt.step();
    })
}

fn sweep_inference() -> SweepResult {
    let inputs = random_inputs(BATCH, N, VOCAB, 5);
    let slime = model();
    thread_sweep(
        "full_ranking_inference",
        THREADS,
        SAMPLES,
        WARM_UP,
        MEASURE,
        || {
            let mut ctx = TrainContext::eval();
            let repr = slime.user_repr(black_box(&inputs), BATCH, &mut ctx);
            black_box(slime.score_all(&repr).value())
        },
    )
}

fn main() {
    let sweeps = vec![sweep_train_step(), sweep_inference()];
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_par.json");
    write_sweep_json(out, &sweeps).expect("write BENCH_par.json");
    for s in &sweeps {
        if let Some(x) = s.speedup(4) {
            println!("{}: 4-thread speedup {x:.2}x", s.name);
        }
    }
    println!("wrote {out}");
}
