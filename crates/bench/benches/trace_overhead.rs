//! Tracing-overhead guard: the train-step routine timed with slime-trace
//! fully off (the default), at `summary` (metrics + per-op profiling), and
//! at `info` (spans/events on top). Emits `BENCH_trace.json` at the
//! workspace root and FAILS if the traced run costs more than the budget.
//!
//! The routine is identical in every mode — tracing is a pure observer, and
//! `trace_determinism.rs` proves the outputs stay bitwise identical — so the
//! A/B isolates the instrumentation cost: one relaxed atomic load per hook
//! when off, two `Instant::now` calls plus an atomic accumulate per op when
//! profiling.
//!
//! Budgets are deliberately loose for noisy CI containers: the three modes
//! are measured as *interleaved* rounds (off → summary → info, a few steps
//! each, repeated) so drifting background load lands on every mode instead
//! of whichever block it overlapped, and the overhead is computed on the
//! min-of-samples (the most repeatable statistic — interference only ever
//! adds time). The traced overhead must stay under 3%; the disabled hook
//! is timed directly in a tight loop and must stay under 100 ns/call (it
//! is ~1-2 ns in practice).

use slime4rec::{ContrastiveMode, NextItemModel, Slime4Rec, SlimeConfig};
use slime_bench::harness::Measurement;
use slime_bench::random_inputs;
use slime_nn::{Module, TrainContext};
use slime_tensor::ops;
use slime_tensor::optim::{Adam, Optimizer};
use std::hint::black_box;
use std::time::{Duration, Instant};

// Same paper-scale-ish dims as mem_sweep: Beauty-sized catalog, max_len 50.
const BATCH: usize = 64;
const N: usize = 50;
const HIDDEN: usize = 64;
const VOCAB: usize = 4000;

const ROUNDS: usize = 16;
const ITERS_PER_ROUND: usize = 3;

/// Real overhead measures +0.3–2.4% on a quiet box; the budget sits above
/// that by roughly the min-of-samples noise floor observed on a loaded
/// single-core container (±2%), so the gate trips on regressions, not on
/// scheduler jitter.
const MAX_TRACED_OVERHEAD_PCT: f64 = 5.0;
const MAX_DISABLED_HOOK_NS: f64 = 100.0;

/// One interleaved sweep over the three trace levels: each round runs a
/// short chunk of train steps per mode with each iteration timed
/// individually, so `min` can find the quiet moments on every mode.
/// Returns `(off, summary, info)`.
fn measure_modes() -> (Measurement, Measurement, Measurement) {
    let inputs = random_inputs(BATCH, N, VOCAB, 3);
    let targets: Vec<usize> = random_inputs(BATCH, 1, VOCAB, 4);
    let mut cfg = SlimeConfig::new(VOCAB);
    cfg.hidden = HIDDEN;
    cfg.max_len = N;
    cfg.layers = 2;
    cfg.contrastive = ContrastiveMode::None;
    let slime = Slime4Rec::new(cfg);
    let mut opt = Adam::new(slime.parameters(), 1e-3);
    let mut ctx = TrainContext::train(1);
    let mut step = || {
        opt.zero_grad();
        let repr = slime.user_repr(black_box(&inputs), BATCH, &mut ctx);
        let loss = ops::cross_entropy(&slime.score_all(&repr), &targets);
        loss.backward();
        opt.step();
    };
    for _ in 0..3 {
        step();
    }
    let modes = [
        slime_trace::Level::Off,
        slime_trace::Level::Summary,
        slime_trace::Level::Info,
    ];
    let mut samples: [Vec<Duration>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..ROUNDS {
        for (mi, &level) in modes.iter().enumerate() {
            slime_trace::set_level(level);
            for _ in 0..ITERS_PER_ROUND {
                let t0 = Instant::now();
                step();
                samples[mi].push(t0.elapsed());
            }
            slime_trace::set_level(slime_trace::Level::Off);
            // Drop whatever the chunk recorded so the next mode starts
            // clean and the event buffers never approach their per-thread
            // cap.
            slime_trace::reset();
        }
    }
    let [off, summary, info] = samples.map(Measurement::from_samples);
    (off, summary, info)
}

/// Slice coverage with timelines live: run a few Info-level train steps
/// and count the per-worker timeline slices the observer recorded. The
/// timing budget already covers the cost (Info mode measures with the
/// observer installed); this proves the export path actually has data.
/// Returns `(slices, distinct workers)`.
fn timeline_probe() -> (usize, usize) {
    let inputs = random_inputs(BATCH, N, VOCAB, 5);
    let targets: Vec<usize> = random_inputs(BATCH, 1, VOCAB, 6);
    let mut cfg = SlimeConfig::new(VOCAB);
    cfg.hidden = HIDDEN;
    cfg.max_len = N;
    cfg.layers = 2;
    cfg.contrastive = ContrastiveMode::None;
    let slime = Slime4Rec::new(cfg);
    let mut opt = Adam::new(slime.parameters(), 1e-3);
    let mut ctx = TrainContext::train(1);
    slime_trace::set_level(slime_trace::Level::Info);
    for _ in 0..3 {
        opt.zero_grad();
        let repr = slime.user_repr(black_box(&inputs), BATCH, &mut ctx);
        let loss = ops::cross_entropy(&slime.score_all(&repr), &targets);
        loss.backward();
        opt.step();
    }
    slime_trace::set_level(slime_trace::Level::Off);
    let slices = slime_trace::drain_slices();
    let workers: std::collections::BTreeSet<u32> = slices.iter().map(|s| s.worker).collect();
    slime_trace::reset();
    (slices.len(), workers.len())
}

/// Nanoseconds per disabled `prof::timer` call: the cost every op pays on
/// every forward/backward when tracing is off.
fn disabled_hook_ns() -> f64 {
    const CALLS: u64 = 4_000_000;
    slime_trace::set_level(slime_trace::Level::Off);
    let start = Instant::now();
    for _ in 0..CALLS {
        black_box(slime_trace::prof::timer(
            "bench.noop",
            slime_trace::prof::Phase::Forward,
        ));
    }
    start.elapsed().as_nanos() as f64 / CALLS as f64
}

fn overhead_pct(base: &Measurement, traced: &Measurement) -> f64 {
    (traced.min.as_secs_f64() / base.min.as_secs_f64().max(1e-12) - 1.0) * 100.0
}

fn print_mode(name: &str, m: &Measurement, base: &Measurement) {
    println!(
        "  train_step/{name:<10} min {:>12?}  median {:>12?}  mean {:>12?}  ({:+.2}% vs off)",
        m.min,
        m.median,
        m.mean,
        overhead_pct(base, m)
    );
}

fn main() {
    use slime_json::Value;

    slime_par::set_threads(4);
    println!("trace_overhead: train step at 4 threads, tracing off vs summary vs info");

    let (off, summary, info) = measure_modes();
    let hook_ns = disabled_hook_ns();
    let (timeline_slices, timeline_workers) = timeline_probe();

    print_mode("off", &off, &off);
    print_mode("summary", &summary, &off);
    print_mode("info", &info, &off);
    println!("  disabled prof hook: {hook_ns:.2} ns/call");
    println!("  timeline probe: {timeline_slices} slices across {timeline_workers} workers");

    let summary_pct = overhead_pct(&off, &summary);
    let info_pct = overhead_pct(&off, &info);

    let mode = |name: &str, m: &Measurement, pct: f64| {
        slime_json::obj([
            ("level", Value::Str(name.into())),
            ("timing", m.to_json()),
            ("overhead_pct_vs_off", Value::Float(pct)),
        ])
    };
    let report = slime_json::obj([
        ("bench", Value::Str("trace_overhead".into())),
        ("env", slime_bench::harness::env_block()),
        (
            "modes",
            Value::Arr(vec![
                mode("off", &off, 0.0),
                mode("summary", &summary, summary_pct),
                mode("info", &info, info_pct),
            ]),
        ),
        ("disabled_hook_ns_per_call", Value::Float(hook_ns)),
        (
            "timeline",
            slime_json::obj([
                ("slices", Value::Int(timeline_slices as i64)),
                ("workers", Value::Int(timeline_workers as i64)),
            ]),
        ),
        (
            "budgets",
            slime_json::obj([
                (
                    "max_traced_overhead_pct",
                    Value::Float(MAX_TRACED_OVERHEAD_PCT),
                ),
                ("max_disabled_hook_ns", Value::Float(MAX_DISABLED_HOOK_NS)),
            ]),
        ),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    std::fs::write(out, report.to_pretty() + "\n").expect("write BENCH_trace.json");
    println!("wrote {out}");

    let worst = summary_pct.max(info_pct);
    assert!(
        worst < MAX_TRACED_OVERHEAD_PCT,
        "traced train step is {worst:.2}% slower than untraced (budget {MAX_TRACED_OVERHEAD_PCT}%)"
    );
    assert!(
        hook_ns < MAX_DISABLED_HOOK_NS,
        "disabled prof hook costs {hook_ns:.2} ns/call (budget {MAX_DISABLED_HOOK_NS} ns)"
    );
    assert!(
        timeline_slices > 0,
        "Info-level train steps recorded no per-worker timeline slices"
    );
    println!("  within budget: traced < {MAX_TRACED_OVERHEAD_PCT}%, disabled hook < {MAX_DISABLED_HOOK_NS} ns");
}
