//! SIMD-backend sweep: the hot kernels and the end-to-end routines timed
//! with the runtime-dispatched backend (AVX2+FMA where the CPU probe finds
//! it) versus the portable scalar kernels forced via
//! `slime_tensor::simd::set_enabled(false)`. Emits `BENCH_simd.json` at the
//! workspace root alongside the printed table.
//!
//! The routine is identical in both modes — the backend is a throughput
//! knob, never a value knob (within a backend; the two backends may differ
//! in the last float bits) — so the A/B isolates the vector win. On a host
//! without AVX2+FMA both columns run the scalar table and every ratio is
//! ~1.0x; `detected.avx2_fma` in the JSON says which world the numbers
//! came from.
//!
//! For cross-PR context the report also folds in the pool-on end-to-end
//! medians from `BENCH_mem.json` (the PR 3 memory sweep) when that file is
//! present, as `end_to_end.*.vs_bench_mem` deltas.

use slime4rec::{ContrastiveMode, NextItemModel, Slime4Rec, SlimeConfig};
use slime_bench::harness::{measure_routine, Measurement};
use slime_bench::random_inputs;
use slime_nn::{Module, TrainContext};
use slime_tensor::optim::{Adam, Optimizer};
use slime_tensor::{ops, simd, NdArray, Tensor};
use std::hint::black_box;
use std::time::Duration;

// Same paper-scale-ish dims as par_sweep/mem_sweep: Beauty-sized catalog,
// max_len 50 — so the end-to-end rows compare directly with BENCH_mem.json.
const BATCH: usize = 64;
const N: usize = 50;
const HIDDEN: usize = 64;
const VOCAB: usize = 4000;

const SAMPLES: usize = 5;
const WARM_UP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1500);

// Per-kernel measurements are microseconds-scale; a shorter window keeps
// the whole sweep under a minute without hurting the median.
const KERNEL_WARM_UP: Duration = Duration::from_millis(200);
const KERNEL_MEASURE: Duration = Duration::from_millis(500);

/// FFT length for the butterfly timing: big enough that the radix-2 passes
/// dominate (the model's own N = 50 spectral path goes through the small-N
/// matmul fallback, which the matmul row already covers).
const FFT_LEN: usize = 512;

fn filled(shape: &[usize], seed: u64) -> NdArray {
    let n: usize = shape.iter().product();
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let data: Vec<f32> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 4.0 - 2.0
        })
        .collect();
    NdArray::from_vec(shape.to_vec(), data)
}

fn measure_matmul2d() -> Measurement {
    // The hidden-projection shape: [B*N, H] @ [H, H] — every FFN and mixer
    // projection runs this, once per token. The weight tile is L1-resident,
    // so this row shows the compute-bound vector win.
    let a = Tensor::constant(filled(&[BATCH * N, HIDDEN], 1));
    let b = Tensor::constant(filled(&[HIDDEN, HIDDEN], 2));
    measure_routine(SAMPLES, KERNEL_WARM_UP, KERNEL_MEASURE, || {
        black_box(ops::matmul(black_box(&a), black_box(&b)).value())
    })
}

fn measure_matmul2d_ranking() -> Measurement {
    // The full-ranking projection shape: [B, H] @ [H, V]. The [H, V] operand
    // is ~1 MB and streams from L2 per row chunk, so this row is partly
    // bandwidth-bound and shows a smaller ratio than the L1-resident tile.
    let a = Tensor::constant(filled(&[BATCH, HIDDEN], 1));
    let b = Tensor::constant(filled(&[HIDDEN, VOCAB], 2));
    measure_routine(SAMPLES, KERNEL_WARM_UP, KERNEL_MEASURE, || {
        black_box(ops::matmul(black_box(&a), black_box(&b)).value())
    })
}

fn measure_softmax() -> Measurement {
    let x = Tensor::constant(filled(&[BATCH, VOCAB], 3));
    measure_routine(SAMPLES, KERNEL_WARM_UP, KERNEL_MEASURE, || {
        black_box(ops::softmax(black_box(&x)).value())
    })
}

fn measure_gelu() -> Measurement {
    let x = Tensor::constant(filled(&[BATCH, N * HIDDEN], 4));
    measure_routine(SAMPLES, KERNEL_WARM_UP, KERNEL_MEASURE, || {
        black_box(ops::gelu(black_box(&x)).value())
    })
}

fn measure_adam() -> Measurement {
    // One optimizer step over an embedding-table-sized parameter.
    let p = Tensor::param(filled(&[VOCAB, HIDDEN], 5));
    let g = filled(&[VOCAB, HIDDEN], 6);
    let mut opt = Adam::new(vec![p.clone()], 1e-3);
    measure_routine(SAMPLES, KERNEL_WARM_UP, KERNEL_MEASURE, || {
        p.with_grad_mut(|slot| *slot = Some(g.clone()));
        opt.step();
    })
}

fn measure_fft() -> Measurement {
    let x: Vec<f32> = filled(&[FFT_LEN], 7).data().to_vec();
    measure_routine(SAMPLES, KERNEL_WARM_UP, KERNEL_MEASURE, || {
        let spec = slime_fft::rfft(black_box(&x));
        black_box(slime_fft::irfft(&spec, FFT_LEN))
    })
}

fn model() -> Slime4Rec {
    let mut cfg = SlimeConfig::new(VOCAB);
    cfg.hidden = HIDDEN;
    cfg.max_len = N;
    cfg.layers = 2;
    cfg.contrastive = ContrastiveMode::None;
    Slime4Rec::new(cfg)
}

fn measure_train_step() -> Measurement {
    let inputs = random_inputs(BATCH, N, VOCAB, 3);
    let targets: Vec<usize> = random_inputs(BATCH, 1, VOCAB, 4);
    let slime = model();
    let mut opt = Adam::new(slime.parameters(), 1e-3);
    let mut ctx = TrainContext::train(1);
    measure_routine(SAMPLES, WARM_UP, MEASURE, || {
        opt.zero_grad();
        let repr = slime.user_repr(black_box(&inputs), BATCH, &mut ctx);
        let loss = ops::cross_entropy(&slime.score_all(&repr), &targets);
        loss.backward();
        opt.step();
    })
}

fn measure_inference() -> Measurement {
    let inputs = random_inputs(BATCH, N, VOCAB, 5);
    let slime = model();
    measure_routine(SAMPLES, WARM_UP, MEASURE, || {
        let mut ctx = TrainContext::eval();
        let repr = slime.user_repr(black_box(&inputs), BATCH, &mut ctx);
        black_box(slime.score_all(&repr).value())
    })
}

/// Run `f` once per backend: scalar first, then whatever the dispatcher
/// resolves to with SIMD enabled (the same scalar table on hosts without
/// AVX2+FMA).
fn ab<T>(f: impl Fn() -> T) -> (T, T) {
    simd::set_enabled(false);
    let scalar = f();
    simd::set_enabled(true);
    let dispatched = f();
    (scalar, dispatched)
}

fn ratio(scalar: &Measurement, dispatched: &Measurement) -> f64 {
    scalar.median.as_secs_f64() / dispatched.median.as_secs_f64().max(1e-12)
}

fn print_pair(name: &str, scalar: &Measurement, dispatched: &Measurement) {
    println!(
        "  {name:<28} scalar median {:>12?}   dispatched median {:>12?}   ({:.2}x)",
        scalar.median,
        dispatched.median,
        ratio(scalar, dispatched)
    );
}

/// The pool-on median for `sweep` from `BENCH_mem.json`, if the file from
/// the PR 3 memory sweep is present and has the expected shape.
fn bench_mem_median_ns(report: Option<&slime_json::Value>, sweep: &str) -> Option<i64> {
    let sweeps = report?.get("sweeps")?.as_arr()?;
    let entry = sweeps
        .iter()
        .find(|s| s.get("name").and_then(|n| n.as_str()) == Some(sweep))?;
    let point = entry
        .get("points")?
        .as_arr()?
        .iter()
        .find(|p| p.get("pool").and_then(|b| b.as_bool()) == Some(true))?;
    point.get("timing")?.get("median_ns")?.as_i64()
}

fn main() {
    use slime_json::Value;

    slime_par::set_threads(1);
    let simd_was = simd::enabled();
    println!(
        "simd_sweep: scalar vs dispatched at 1 thread (avx2+fma detected: {})",
        simd::avx2_fma_detected()
    );

    let (mm_s, mm_d) = ab(measure_matmul2d);
    let (mmr_s, mmr_d) = ab(measure_matmul2d_ranking);
    let (sm_s, sm_d) = ab(measure_softmax);
    let (ge_s, ge_d) = ab(measure_gelu);
    let (ad_s, ad_d) = ab(measure_adam);
    let (fft_s, fft_d) = ab(measure_fft);
    let (train_s, train_d) = ab(measure_train_step);
    let (infer_s, infer_d) = ab(measure_inference);
    let dispatched_backend = simd::backend().name();
    simd::set_enabled(simd_was);

    print_pair("matmul2d", &mm_s, &mm_d);
    print_pair("matmul2d_ranking", &mmr_s, &mmr_d);
    print_pair("softmax", &sm_s, &sm_d);
    print_pair("gelu", &ge_s, &ge_d);
    print_pair("adam_step", &ad_s, &ad_d);
    print_pair("rfft_irfft_512", &fft_s, &fft_d);
    print_pair("train_step", &train_s, &train_d);
    print_pair("full_ranking_inference", &infer_s, &infer_d);

    let mem_report =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mem.json"))
            .ok()
            .and_then(|s| slime_json::parse(&s).ok());

    let pair = |name: &str, scalar: &Measurement, dispatched: &Measurement| {
        slime_json::obj([
            ("name", Value::Str(name.into())),
            (
                "points",
                Value::Arr(vec![
                    slime_json::obj([("simd", Value::Bool(false)), ("timing", scalar.to_json())]),
                    slime_json::obj([
                        ("simd", Value::Bool(true)),
                        ("timing", dispatched.to_json()),
                    ]),
                ]),
            ),
            ("speedup_vs_scalar", Value::Float(ratio(scalar, dispatched))),
        ])
    };
    let end_to_end = |name: &str, scalar: &Measurement, dispatched: &Measurement| {
        let prior = bench_mem_median_ns(mem_report.as_ref(), name);
        slime_json::obj([
            ("name", Value::Str(name.into())),
            (
                "points",
                Value::Arr(vec![
                    slime_json::obj([("simd", Value::Bool(false)), ("timing", scalar.to_json())]),
                    slime_json::obj([
                        ("simd", Value::Bool(true)),
                        ("timing", dispatched.to_json()),
                    ]),
                ]),
            ),
            ("speedup_vs_scalar", Value::Float(ratio(scalar, dispatched))),
            (
                "vs_bench_mem",
                match prior {
                    Some(prior_ns) => slime_json::obj([
                        ("pool_on_median_ns", Value::Int(prior_ns)),
                        (
                            "speedup_vs_bench_mem",
                            Value::Float(
                                prior_ns as f64 / (dispatched.median.as_nanos() as f64).max(1.0),
                            ),
                        ),
                    ]),
                    None => Value::Null,
                },
            ),
        ])
    };

    let report = slime_json::obj([
        ("bench", Value::Str("simd_sweep".into())),
        ("env", slime_bench::harness::env_block()),
        (
            "detected",
            slime_json::obj([
                ("avx2_fma", Value::Bool(simd::avx2_fma_detected())),
                ("dispatched_backend", Value::Str(dispatched_backend.into())),
            ]),
        ),
        (
            "kernels",
            Value::Arr(vec![
                pair("matmul2d", &mm_s, &mm_d),
                pair("matmul2d_ranking", &mmr_s, &mmr_d),
                pair("softmax", &sm_s, &sm_d),
                pair("gelu", &ge_s, &ge_d),
                pair("adam_step", &ad_s, &ad_d),
                pair("rfft_irfft_512", &fft_s, &fft_d),
            ]),
        ),
        (
            "end_to_end",
            Value::Arr(vec![
                end_to_end("train_step", &train_s, &train_d),
                end_to_end("full_ranking_inference", &infer_s, &infer_d),
            ]),
        ),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simd.json");
    std::fs::write(out, report.to_pretty() + "\n").expect("write BENCH_simd.json");
    println!("wrote {out}");
}
