//! Two-stage retrieval vs exact full-catalog ranking across catalog scales
//! (10³ / 10⁵ / 10⁶ items). Emits `BENCH_ann.json` at the workspace root.
//!
//! Per scale the sweep reports:
//! - serving latency: exact f32 ranking (nt-kernel matmul over the whole
//!   table + top-k select) vs two-stage (probe the k-means cell index,
//!   re-rank the shortlist);
//! - recall@10/@20 of the two-stage top-k against the exact top-k, with
//!   both the f32 and the int8 re-rank;
//! - the re-rank stage alone, f32 gather+matmul vs int8 `dot_i8`, on the
//!   same fixed shortlist;
//! - int8-vs-f32 score error over the shortlist.
//!
//! Two floors are enforced here and by `scripts/ci.sh`: recall@10 ≥ 0.95
//! at 10⁵ and 10⁶ items, and two-stage ≥ 10× faster than exact at 10⁶.

use slime4rec::retrieval::{RetrievalConfig, RetrievalMode, Retriever};
use slime_bench::harness::{measure_routine, Measurement};
use slime_rng::rngs::StdRng;
use slime_rng::{Rng, SeedableRng};
use slime_tensor::pool;
use slime_tensor::NdArray;
use std::hint::black_box;
use std::time::Duration;

const DIM: usize = 32;
const SAMPLES: usize = 5;
const WARM_UP: Duration = Duration::from_millis(150);
const MEASURE: Duration = Duration::from_millis(700);

struct Scale {
    n_items: usize,
    n_clusters: usize,
    cells: usize,
    nprobe: usize,
    queries: usize,
}

const SCALES: &[Scale] = &[
    Scale {
        n_items: 1_000,
        n_clusters: 16,
        cells: 32,
        nprobe: 8,
        queries: 25,
    },
    Scale {
        n_items: 100_000,
        n_clusters: 256,
        cells: 256,
        nprobe: 16,
        queries: 15,
    },
    Scale {
        n_items: 1_000_000,
        n_clusters: 1024,
        cells: 1024,
        nprobe: 16,
        queries: 8,
    },
];

/// A `(n_items+1) × DIM` clustered table (row 0 = padding zeros): Gaussian
/// cluster centers plus 0.25·noise, the shape a trained embedding table
/// takes. Returns the table and the centers (used as query stand-ins).
fn catalog(scale: &Scale, seed: u64) -> (NdArray, Vec<Vec<f32>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = || {
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    };
    let centers: Vec<Vec<f32>> = (0..scale.n_clusters)
        .map(|_| (0..DIM).map(|_| normal()).collect())
        .collect();
    let mut data = vec![0.0f32; (scale.n_items + 1) * DIM];
    for item in 1..=scale.n_items {
        let c = &centers[(item - 1) % scale.n_clusters];
        let row = &mut data[item * DIM..(item + 1) * DIM];
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = c[j] + 0.25 * normal();
        }
    }
    (
        NdArray::from_vec(vec![scale.n_items + 1, DIM], data),
        centers,
    )
}

/// Exact top-k item ids by f32 dot over the full table (the ground truth
/// the recall numbers are measured against).
fn exact_top_k(emb: &NdArray, query: &[f32], k: usize) -> Vec<u32> {
    let vocab = emb.shape()[0];
    let data = emb.data();
    let mut top: Vec<(f32, u32)> = Vec::with_capacity(k + 1);
    for item in 1..vocab {
        let row = &data[item * DIM..(item + 1) * DIM];
        let s: f32 = query.iter().zip(row).map(|(&a, &b)| a * b).sum();
        let worse = top.len() == k
            && top
                .last()
                .is_none_or(|&(ws, wi)| s < ws || (s == ws && item as u32 > wi));
        if worse {
            continue;
        }
        let pos = top.partition_point(|&(ts, ti)| ts > s || (ts == s && ti < item as u32));
        top.insert(pos, (s, item as u32));
        top.truncate(k);
    }
    top.iter().map(|&(_, id)| id).collect()
}

/// Two-stage top-k through `r` (shortlist + re-rank + select), honouring
/// the retriever's current `quantize` setting.
fn two_stage_top_k(r: &Retriever, query: &[f32], k: usize) -> Vec<u32> {
    let cands = r.shortlist(query, k);
    let mut scores = Vec::new();
    r.score_items(query, &cands, &mut scores);
    let cmp = |&a: &usize, &b: &usize| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(cands[a].cmp(&cands[b]))
    };
    let mut order: Vec<usize> = (0..cands.len()).collect();
    let kk = k.min(order.len());
    if kk > 0 && kk < order.len() {
        // Partial select then sort the head — full sorts of a 10⁴–10⁵ item
        // shortlist would dominate the serving time being measured.
        order.select_nth_unstable_by(kk - 1, cmp);
        order.truncate(kk);
    }
    order.sort_by(cmp);
    order.iter().take(kk).map(|&i| cands[i]).collect()
}

fn recall(exact: &[Vec<u32>], approx: &[Vec<u32>], k: usize) -> f64 {
    let mut hits = 0usize;
    let mut want = 0usize;
    for (e, a) in exact.iter().zip(approx) {
        let e = &e[..k.min(e.len())];
        let a = &a[..k.min(a.len())];
        want += e.len();
        hits += e.iter().filter(|id| a.contains(id)).count();
    }
    hits as f64 / want.max(1) as f64
}

fn measure_exact(emb: &NdArray, query: &[f32]) -> Measurement {
    let q = NdArray::from_vec(vec![1, DIM], query.to_vec());
    measure_routine(SAMPLES, WARM_UP, MEASURE, || {
        let scores = q.matmul2d_nt(black_box(emb));
        let data = scores.data();
        let mut top: Vec<(f32, u32)> = Vec::with_capacity(11);
        for (item, &s) in data.iter().enumerate().skip(1) {
            if top.len() == 10 && top.last().is_none_or(|&(ws, _)| s <= ws) {
                continue;
            }
            let pos = top.partition_point(|&(ts, _)| ts >= s);
            top.insert(pos, (s, item as u32));
            top.truncate(10);
        }
        black_box(top)
    })
}

fn measure_two_stage(r: &Retriever, query: &[f32]) -> Measurement {
    measure_routine(SAMPLES, WARM_UP, MEASURE, || {
        black_box(two_stage_top_k(r, black_box(query), 10))
    })
}

/// The re-rank stage alone, on a fixed shortlist.
fn measure_rerank(r: &Retriever, query: &[f32], cands: &[u32]) -> Measurement {
    let mut scores = Vec::new();
    measure_routine(SAMPLES, WARM_UP, MEASURE, || {
        r.score_items(black_box(query), black_box(cands), &mut scores);
        black_box(scores.last().copied())
    })
}

fn ratio(a: &Measurement, b: &Measurement) -> f64 {
    a.median.as_secs_f64() / b.median.as_secs_f64().max(1e-12)
}

fn main() {
    use slime_json::Value;

    pool::set_enabled(true);
    println!(
        "ann_sweep: exact vs two-stage retrieval, dim {DIM}, {} cores",
        slime_par::available_threads()
    );

    let mut scale_reports = Vec::new();
    let mut floors_ok = true;
    for (si, scale) in SCALES.iter().enumerate() {
        let (emb, centers) = catalog(scale, 1000 + si as u64);
        let cfg = RetrievalConfig {
            mode: RetrievalMode::TwoStage,
            quantize: false,
            cells: scale.cells,
            nprobe: scale.nprobe,
            ..RetrievalConfig::default()
        };
        let build_t = std::time::Instant::now();
        let mut r = Retriever::build(&emb, cfg);
        let build_ms = build_t.elapsed().as_secs_f64() * 1e3;

        // Queries near cluster centers, the shape of a trained user repr.
        let mut rng = StdRng::seed_from_u64(33 + si as u64);
        let queries: Vec<Vec<f32>> = (0..scale.queries)
            .map(|qi| {
                centers[(qi * 37) % centers.len()]
                    .iter()
                    .map(|&v| v + 0.1 * (rng.gen::<f32>() - 0.5))
                    .collect()
            })
            .collect();

        let exact20: Vec<Vec<u32>> = queries.iter().map(|q| exact_top_k(&emb, q, 20)).collect();
        let f32_20: Vec<Vec<u32>> = queries.iter().map(|q| two_stage_top_k(&r, q, 20)).collect();
        r.cfg.quantize = true;
        let int8_20: Vec<Vec<u32>> = queries.iter().map(|q| two_stage_top_k(&r, q, 20)).collect();
        r.cfg.quantize = false;

        let recalls = [
            (
                "f32",
                recall(&exact20, &f32_20, 10),
                recall(&exact20, &f32_20, 20),
            ),
            (
                "int8",
                recall(&exact20, &int8_20, 10),
                recall(&exact20, &int8_20, 20),
            ),
        ];

        // int8-vs-f32 score error over one query's shortlist.
        let q0 = &queries[0];
        let cands = r.shortlist(q0, 10);
        let mut s_f32 = Vec::new();
        r.score_items(q0, &cands, &mut s_f32);
        r.cfg.quantize = true;
        let mut s_int8 = Vec::new();
        r.score_items(q0, &cands, &mut s_int8);
        r.cfg.quantize = false;
        let (mut err_sum, mut mag_sum) = (0.0f64, 0.0f64);
        for (a, b) in s_f32.iter().zip(&s_int8) {
            err_sum += f64::from((a - b).abs());
            mag_sum += f64::from(a.abs());
        }
        let rel_err = err_sum / mag_sum.max(1e-12);

        let exact_m = measure_exact(&emb, q0);
        let two_f32_m = measure_two_stage(&r, q0);
        r.cfg.quantize = true;
        let two_int8_m = measure_two_stage(&r, q0);
        r.cfg.quantize = false;
        let rerank_f32_m = measure_rerank(&r, q0, &cands);
        r.cfg.quantize = true;
        let rerank_int8_m = measure_rerank(&r, q0, &cands);
        r.cfg.quantize = false;

        let speedup = ratio(&exact_m, &two_int8_m);
        println!(
            "  {:>9} items: build {build_ms:>8.1} ms, shortlist {:>6}, \
             recall@10 f32 {:.3} int8 {:.3}, rel score err {rel_err:.2e}",
            scale.n_items,
            cands.len(),
            recalls[0].1,
            recalls[1].1
        );
        println!(
            "             exact {:>10?}  two-stage f32 {:>10?}  int8 {:>10?}  \
             ({speedup:.1}x)  rerank f32 {:>9?} int8 {:>9?} ({:.2}x)",
            exact_m.median,
            two_f32_m.median,
            two_int8_m.median,
            rerank_f32_m.median,
            rerank_int8_m.median,
            ratio(&rerank_f32_m, &rerank_int8_m)
        );

        // CI floors (also asserted below once all scales are in).
        if scale.n_items >= 100_000 {
            floors_ok &= recalls[0].1 >= 0.95 && recalls[1].1 >= 0.95;
        }
        if scale.n_items >= 1_000_000 {
            floors_ok &= speedup >= 10.0;
        }

        scale_reports.push(slime_json::obj([
            ("n_items", Value::Int(scale.n_items as i64)),
            ("dim", Value::Int(DIM as i64)),
            ("cells", Value::Int(scale.cells as i64)),
            ("nprobe", Value::Int(scale.nprobe as i64)),
            ("queries", Value::Int(scale.queries as i64)),
            ("shortlist_len", Value::Int(cands.len() as i64)),
            ("index_build_ms", Value::Float(build_ms)),
            (
                "recall",
                Value::Arr(
                    recalls
                        .iter()
                        .map(|&(rerank, at10, at20)| {
                            slime_json::obj([
                                ("rerank", Value::Str(rerank.into())),
                                ("at10", Value::Float(at10)),
                                ("at20", Value::Float(at20)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("int8_rel_score_error", Value::Float(rel_err)),
            (
                "latency",
                slime_json::obj([
                    ("exact_f32", exact_m.to_json()),
                    ("two_stage_f32", two_f32_m.to_json()),
                    ("two_stage_int8", two_int8_m.to_json()),
                    ("rerank_f32", rerank_f32_m.to_json()),
                    ("rerank_int8", rerank_int8_m.to_json()),
                    ("speedup_exact_over_two_stage_int8", Value::Float(speedup)),
                    (
                        "rerank_speedup_f32_over_int8",
                        Value::Float(ratio(&rerank_f32_m, &rerank_int8_m)),
                    ),
                ]),
            ),
        ]));
    }

    let report = slime_json::obj([
        ("bench", Value::Str("ann_sweep".into())),
        ("env", slime_bench::harness::env_block()),
        (
            "floors",
            slime_json::obj([
                ("recall_at_10_min", Value::Float(0.95)),
                ("speedup_at_1e6_min", Value::Float(10.0)),
                ("passed", Value::Bool(floors_ok)),
            ]),
        ),
        ("scales", Value::Arr(scale_reports)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ann.json");
    std::fs::write(out, report.to_pretty() + "\n").expect("write BENCH_ann.json");
    println!("wrote {out}");
    assert!(
        floors_ok,
        "ann_sweep floors failed: recall@10 >= 0.95 at 1e5/1e6 items and \
         two-stage >= 10x exact at 1e6 (see BENCH_ann.json)"
    );
}
