//! A minimal single-precision complex number.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f32` components.
///
/// Only the operations needed by the FFT kernels and the spectral-filter
/// autodiff op are implemented; this is intentionally not a general-purpose
/// complex library.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex32 {
    /// The additive identity.
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex32 = Complex32 { re: 1.0, im: 0.0 };

    /// Create a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Complex32 { re, im }
    }

    /// `e^{i theta}` = `cos(theta) + i sin(theta)`.
    ///
    /// Computed in `f64` for accuracy (twiddle factors accumulate error in
    /// long transforms).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex32 {
            re: theta.cos() as f32,
            im: theta.sin() as f32,
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex32 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f32 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Multiply by a real scalar.
    #[inline]
    pub fn scale(self, s: f32) -> Self {
        Complex32 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    #[inline]
    fn add(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex32 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex32) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex32 {
    type Output = Complex32;
    #[inline]
    fn sub(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex32) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: Complex32) -> Complex32 {
        Complex32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex32) {
        *self = *self * rhs;
    }
}

impl Div<f32> for Complex32 {
    type Output = Complex32;
    #[inline]
    fn div(self, rhs: f32) -> Complex32 {
        Complex32::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex32 {
    type Output = Complex32;
    #[inline]
    fn neg(self) -> Complex32 {
        Complex32::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex32::new(1.5, -2.0);
        let b = Complex32::new(-0.5, 3.0);
        assert_eq!(a + b, Complex32::new(1.0, 1.0));
        assert_eq!(a - b, Complex32::new(2.0, -5.0));
        // (1.5 - 2i)(-0.5 + 3i) = -0.75 + 4.5i + 1i + 6 = 5.25 + 5.5i
        assert_eq!(a * b, Complex32::new(5.25, 5.5));
        assert_eq!(a * Complex32::ONE, a);
        assert_eq!(a + Complex32::ZERO, a);
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex32::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex32::new(3.0, -4.0));
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.norm_sqr(), 25.0);
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < 1e-6 && p.im.abs() < 1e-6);
    }

    #[test]
    fn cis_unit_circle() {
        let c = Complex32::cis(std::f64::consts::PI / 2.0);
        assert!(c.re.abs() < 1e-6);
        assert!((c.im - 1.0).abs() < 1e-6);
    }
}
