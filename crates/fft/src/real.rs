//! Real FFTs with `torch.fft.rfft` / `irfft` conventions.

use crate::complex::Complex32;
use crate::plan::with_cached_plan;

/// Number of frequency bins returned by [`rfft`] for a length-`n` signal:
/// `floor(n/2) + 1`.
///
/// This is the `M` of the paper's Eq. 13 for the even sequence lengths the
/// paper uses (`{25, 50, 75, 100}` → for even `N`, `ceil(N/2)+1 = N/2+1`).
#[inline]
pub fn rfft_len(n: usize) -> usize {
    n / 2 + 1
}

/// Forward real FFT: returns the first `floor(n/2) + 1` bins of the DFT of
/// `x` (unnormalized, negative exponent). The remaining bins are the complex
/// conjugates of these by symmetry (`X_k = conj(X_{N-k})`, Section II-B).
pub fn rfft(x: &[f32]) -> Vec<Complex32> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let mut buf = vec![Complex32::ZERO; n];
    crate::simd::widen(x, &mut buf);
    with_cached_plan(n, |p| p.forward(&mut buf));
    buf.truncate(rfft_len(n));
    buf
}

/// Inverse real FFT: reconstructs a length-`n` real signal from the half
/// spectrum `spec` (length `floor(n/2)+1`), applying the `1/n` normalization.
///
/// Like `torch.fft.irfft`, the imaginary parts of bins `0` and (for even `n`)
/// `n/2` are ignored — a valid half-spectrum of a real signal has real values
/// there, and the spectral-filter op can produce inconsistent values that
/// must be projected away.
///
/// # Panics
/// Panics if `spec.len() != rfft_len(n)`.
pub fn irfft(spec: &[Complex32], n: usize) -> Vec<f32> {
    if n == 0 {
        assert!(spec.is_empty(), "nonempty spectrum for empty signal");
        return Vec::new();
    }
    let m = rfft_len(n);
    assert_eq!(spec.len(), m, "half-spectrum length mismatch for n={n}");
    let mut full = vec![Complex32::ZERO; n];
    full[0] = Complex32::new(spec[0].re, 0.0);
    for k in 1..m {
        let v = if n.is_multiple_of(2) && k == n / 2 {
            Complex32::new(spec[k].re, 0.0)
        } else {
            spec[k]
        };
        full[k] = v;
        full[n - k] = v.conj();
    }
    with_cached_plan(n, |p| p.inverse(&mut full));
    let mut out = vec![0f32; n];
    crate::simd::extract_re(&full, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfft_len_values() {
        assert_eq!(rfft_len(1), 1);
        assert_eq!(rfft_len(2), 2);
        assert_eq!(rfft_len(50), 26);
        assert_eq!(rfft_len(51), 26);
        assert_eq!(rfft_len(100), 51);
    }

    #[test]
    fn irfft_inverts_rfft_even_and_odd() {
        for n in [2usize, 5, 8, 25, 50, 75, 100] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).sin() + 0.2).collect();
            let spec = rfft(&x);
            assert_eq!(spec.len(), rfft_len(n));
            let back = irfft(&spec, n);
            for (a, b) in back.iter().zip(x.iter()) {
                assert!((a - b).abs() < 2e-3, "n={n}");
            }
        }
    }

    #[test]
    fn rfft_matches_full_dft_prefix() {
        let n = 12;
        let x: Vec<f32> = (0..n).map(|i| (i * i) as f32 * 0.01 - 0.3).collect();
        let full: Vec<Complex32> = crate::dft::dft(
            &x.iter()
                .map(|&v| Complex32::new(v, 0.0))
                .collect::<Vec<_>>(),
        );
        let half = rfft(&x);
        for (a, b) in half.iter().zip(full.iter()) {
            assert!((a.re - b.re).abs() < 1e-3);
            assert!((a.im - b.im).abs() < 1e-3);
        }
        // Conjugate symmetry of the discarded half.
        for k in 1..n / 2 {
            let c = full[n - k];
            assert!((c.re - half[k].re).abs() < 1e-3);
            assert!((c.im + half[k].im).abs() < 1e-3);
        }
    }

    #[test]
    fn irfft_ignores_inconsistent_imag_at_dc_and_nyquist() {
        let n = 8;
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut spec = rfft(&x);
        spec[0].im = 99.0;
        spec[n / 2].im = -7.0;
        let back = irfft(&spec, n);
        for (a, b) in back.iter().zip(x.iter()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn constant_signal_has_only_dc() {
        let x = vec![3.0f32; 10];
        let spec = rfft(&x);
        assert!((spec[0].re - 30.0).abs() < 1e-3);
        for c in &spec[1..] {
            assert!(c.abs() < 1e-3);
        }
    }

    #[test]
    fn empty_signal() {
        assert!(rfft(&[]).is_empty());
        assert!(irfft(&[], 0).is_empty());
    }
}
