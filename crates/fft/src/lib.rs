//! # slime-fft
//!
//! A small, dependency-free FFT library used by the SLIME4Rec reproduction.
//!
//! It provides:
//!
//! * [`Complex32`] — a minimal complex number type.
//! * [`FftPlan`] — a reusable plan for forward/inverse complex FFTs of any
//!   length (radix-2 for powers of two, Bluestein's algorithm otherwise).
//! * [`rfft`] / [`irfft`] — real FFTs with the same conventions as
//!   `torch.fft.rfft` / `torch.fft.irfft`: an unnormalized forward transform
//!   and a `1/N`-scaled inverse, returning `N/2 + 1` frequency bins.
//! * [`dft`] — a naive `O(N^2)` reference implementation used for testing.
//!
//! The paper (Section II-B) relies on the conjugate-symmetry of the DFT of a
//! real signal: the first `floor(N/2) + 1` bins carry the full information.
//! (The paper's Eq. 13 writes `M = ceil(N/2) + 1`; for the even sequence
//! lengths used throughout the paper this equals `N/2 + 1`, which is the
//! standard `rfft` output length we use for all `N`.)
//!
//! ```
//! use slime_fft::{irfft, rfft};
//!
//! let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
//! let spectrum = rfft(&x);           // floor(5/2) + 1 = 3 bins
//! assert_eq!(spectrum.len(), 3);
//! let back = irfft(&spectrum, 5);
//! for (a, b) in back.iter().zip(&x) {
//!     assert!((a - b).abs() < 1e-4);
//! }
//! ```

mod complex;
mod dft;
mod plan;
mod real;
pub mod simd;

pub use complex::Complex32;
pub use dft::{dft, idft};
pub use plan::{
    plan_cache_stats, reset_plan_cache_stats, with_cached_plan, FftPlan, PlanCacheStats,
};
pub use real::{irfft, rfft, rfft_len};

/// Compute an in-place forward FFT (negative-exponent convention, unnormalized).
///
/// Convenience wrapper that builds (or fetches from a thread-local cache) a
/// plan for `buf.len()`.
pub fn fft(buf: &mut [Complex32]) {
    plan::with_cached_plan(buf.len(), |p| p.forward(buf));
}

/// Compute an in-place inverse FFT (positive-exponent convention, scaled by `1/N`).
pub fn ifft(buf: &mut [Complex32]) {
    plan::with_cached_plan(buf.len(), |p| p.inverse(buf));
}

/// Compute an in-place **unnormalized** inverse FFT (positive exponent, no `1/N`).
///
/// This is the adjoint of [`fft`] and is used by the autodiff backward pass of
/// the spectral-filter op in `slime-tensor`.
pub fn ifft_unscaled(buf: &mut [Complex32]) {
    plan::with_cached_plan(buf.len(), |p| p.inverse_unscaled(buf));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex32, b: Complex32, tol: f32) {
        assert!(
            (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol,
            "{a:?} != {b:?}"
        );
    }

    #[test]
    fn fft_matches_dft_power_of_two() {
        let x: Vec<Complex32> = (0..16)
            .map(|i| Complex32::new((i as f32).sin(), (i as f32 * 0.3).cos()))
            .collect();
        let reference = dft(&x);
        let mut buf = x.clone();
        fft(&mut buf);
        for (a, b) in buf.iter().zip(reference.iter()) {
            assert_close(*a, *b, 1e-4);
        }
    }

    #[test]
    fn fft_matches_dft_non_power_of_two() {
        for n in [3usize, 5, 6, 7, 12, 25, 50, 75, 100] {
            let x: Vec<Complex32> = (0..n)
                .map(|i| Complex32::new((i as f32 * 0.7).sin(), (i as f32 * 0.11).cos()))
                .collect();
            let reference = dft(&x);
            let mut buf = x.clone();
            fft(&mut buf);
            for (a, b) in buf.iter().zip(reference.iter()) {
                assert_close(*a, *b, 2e-3);
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        for n in [8usize, 25, 50, 64, 100] {
            let x: Vec<Complex32> = (0..n)
                .map(|i| Complex32::new((i as f32 * 1.3).cos(), (i as f32 * 0.9).sin()))
                .collect();
            let mut buf = x.clone();
            fft(&mut buf);
            ifft(&mut buf);
            for (a, b) in buf.iter().zip(x.iter()) {
                assert_close(*a, *b, 1e-3);
            }
        }
    }

    #[test]
    fn ifft_unscaled_is_n_times_ifft() {
        let n = 12;
        let x: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new(i as f32, -(i as f32) * 0.5))
            .collect();
        let mut a = x.clone();
        let mut b = x.clone();
        ifft(&mut a);
        ifft_unscaled(&mut b);
        for (u, v) in a.iter().zip(b.iter()) {
            assert_close(Complex32::new(u.re * n as f32, u.im * n as f32), *v, 1e-3);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut buf = vec![Complex32::ZERO; 32];
        buf[0] = Complex32::new(1.0, 0.0);
        fft(&mut buf);
        for c in &buf {
            assert_close(*c, Complex32::new(1.0, 0.0), 1e-5);
        }
    }

    #[test]
    fn single_tone_concentrates_energy() {
        // A pure cosine at bin k should put all energy at bins k and N-k.
        let n = 64;
        let k = 5;
        let mut buf: Vec<Complex32> = (0..n)
            .map(|i| {
                Complex32::new(
                    (2.0 * std::f32::consts::PI * k as f32 * i as f32 / n as f32).cos(),
                    0.0,
                )
            })
            .collect();
        fft(&mut buf);
        for (i, c) in buf.iter().enumerate() {
            let mag = c.abs();
            if i == k || i == n - k {
                assert!((mag - n as f32 / 2.0).abs() < 1e-2, "bin {i}: {mag}");
            } else {
                assert!(mag < 1e-2, "bin {i}: {mag}");
            }
        }
    }
}
