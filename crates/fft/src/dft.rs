//! Naive `O(N^2)` discrete Fourier transform, used as a test oracle and for
//! tiny transforms where planning overhead is not worthwhile.

use crate::complex::Complex32;

/// Forward DFT: `X_k = sum_n x_n e^{-2 pi i k n / N}` (paper Eq. 3).
///
/// Twiddles are computed in `f64` so this is a trustworthy oracle for the
/// fast transforms.
pub fn dft(x: &[Complex32]) -> Vec<Complex32> {
    let n = x.len();
    let mut out = vec![Complex32::ZERO; n];
    if n == 0 {
        return out;
    }
    let step = -2.0 * std::f64::consts::PI / n as f64;
    for (k, slot) in out.iter_mut().enumerate() {
        let mut acc_re = 0.0f64;
        let mut acc_im = 0.0f64;
        for (i, v) in x.iter().enumerate() {
            let theta = step * (k * i % n) as f64;
            let (s, c) = theta.sin_cos();
            acc_re += v.re as f64 * c - v.im as f64 * s;
            acc_im += v.re as f64 * s + v.im as f64 * c;
        }
        *slot = Complex32::new(acc_re as f32, acc_im as f32);
    }
    out
}

/// Inverse DFT: `x_n = (1/N) sum_k X_k e^{+2 pi i k n / N}` (paper Eq. 5).
pub fn idft(x: &[Complex32]) -> Vec<Complex32> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    // IDFT(x) = conj(DFT(conj(x))) / N
    let conj: Vec<Complex32> = x.iter().map(|c| c.conj()).collect();
    dft(&conj)
        .into_iter()
        .map(|c| c.conj() / n as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idft_inverts_dft() {
        let x: Vec<Complex32> = (0..7)
            .map(|i| Complex32::new(i as f32, (i * i) as f32 * 0.1))
            .collect();
        let back = idft(&dft(&x));
        for (a, b) in back.iter().zip(x.iter()) {
            assert!((a.re - b.re).abs() < 1e-4);
            assert!((a.im - b.im).abs() < 1e-4);
        }
    }

    #[test]
    fn dft_of_constant_is_impulse() {
        let x = vec![Complex32::new(2.0, 0.0); 8];
        let spec = dft(&x);
        assert!((spec[0].re - 16.0).abs() < 1e-4);
        for c in &spec[1..] {
            assert!(c.abs() < 1e-4);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<Complex32> = (0..9)
            .map(|i| Complex32::new((i as f32).sin(), (i as f32).cos()))
            .collect();
        let spec = dft(&x);
        let time_energy: f32 = x.iter().map(|c| c.norm_sqr()).sum();
        let freq_energy: f32 = spec.iter().map(|c| c.norm_sqr()).sum::<f32>() / x.len() as f32;
        assert!((time_energy - freq_energy).abs() < 1e-3);
    }
}
