//! FFT plans: radix-2 Cooley-Tukey for powers of two, Bluestein's chirp-z
//! algorithm for every other length, and a thread-local plan cache.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::complex::Complex32;

/// A reusable plan for complex FFTs of a fixed length.
///
/// Plans own their twiddle tables, so repeated transforms of the same length
/// (the common case: the model applies an FFT per layer per batch) cost no
/// trigonometry. The forward transform uses the negative-exponent convention
/// of the paper's Eq. 3 and is unnormalized; the inverse applies `1/N`.
pub struct FftPlan {
    n: usize,
    kind: PlanKind,
}

enum PlanKind {
    /// Degenerate lengths 0 and 1.
    Trivial,
    Radix2 {
        /// Bit-reversal permutation table.
        rev: Vec<u32>,
        /// `e^{-2 pi i j / len}` for each butterfly stage, flattened.
        twiddles: Vec<Complex32>,
    },
    Bluestein {
        /// Power-of-two convolution length (`>= 2n - 1`).
        m: usize,
        /// `w_k = e^{-i pi k^2 / n}` for `k in 0..n`.
        chirp: Vec<Complex32>,
        /// Forward FFT (length `m`) of the padded conjugate-chirp kernel.
        kernel_fft: Vec<Complex32>,
        /// Inner power-of-two plan of length `m`.
        inner: Box<FftPlan>,
    },
}

impl FftPlan {
    /// Build a plan for transforms of length `n`.
    pub fn new(n: usize) -> Self {
        if n <= 1 {
            return FftPlan {
                n,
                kind: PlanKind::Trivial,
            };
        }
        if n.is_power_of_two() {
            FftPlan {
                n,
                kind: PlanKind::Radix2 {
                    rev: bit_reversal_table(n),
                    twiddles: stage_twiddles(n),
                },
            }
        } else {
            let m = (2 * n - 1).next_power_of_two();
            // Bounds contract for the wrap-around fills below: every index
            // into the length-m kernel is `k` or `m - k` with `k < n <= m`.
            debug_assert!(
                n >= 2 && m >= 2 * n - 1,
                "Bluestein kernel shorter than 2n-1"
            );
            // chirp[k] = e^{-i pi k^2 / n}; compute k^2 mod 2n to keep the
            // angle argument small and accurate for large k.
            let chirp: Vec<Complex32> = (0..n)
                .map(|k| {
                    let k2 = (k * k) % (2 * n);
                    Complex32::cis(-std::f64::consts::PI * k2 as f64 / n as f64)
                })
                .collect();
            // Kernel b[j] = conj(chirp[|j|]) wrapped into length m.
            let mut kernel = vec![Complex32::ZERO; m];
            for k in 0..n {
                let c = chirp[k].conj();
                kernel[k] = c;
                if k != 0 {
                    kernel[m - k] = c;
                }
            }
            let inner = Box::new(FftPlan::new(m));
            inner.forward(&mut kernel);
            FftPlan {
                n,
                kind: PlanKind::Bluestein {
                    m,
                    chirp,
                    kernel_fft: kernel,
                    inner,
                },
            }
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether this plan is for the empty transform.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT (unnormalized, negative exponent).
    ///
    /// # Panics
    /// Panics if `buf.len() != self.len()`.
    pub fn forward(&self, buf: &mut [Complex32]) {
        assert_eq!(buf.len(), self.n, "buffer length mismatch");
        match &self.kind {
            PlanKind::Trivial => {}
            PlanKind::Radix2 { rev, twiddles } => radix2_inplace(buf, rev, twiddles),
            PlanKind::Bluestein {
                m,
                chirp,
                kernel_fft,
                inner,
            } => {
                let n = self.n;
                let mut a = vec![Complex32::ZERO; *m];
                a[..n].copy_from_slice(buf);
                crate::simd::cmul_inplace(&mut a[..n], chirp);
                inner.forward(&mut a);
                crate::simd::cmul_inplace(&mut a, kernel_fft);
                inner.inverse(&mut a);
                buf.copy_from_slice(&a[..n]);
                crate::simd::cmul_inplace(buf, chirp);
            }
        }
    }

    /// In-place inverse FFT (positive exponent, scaled by `1/N`).
    pub fn inverse(&self, buf: &mut [Complex32]) {
        self.inverse_unscaled(buf);
        let scale = 1.0 / self.n.max(1) as f32;
        for c in buf.iter_mut() {
            *c = c.scale(scale);
        }
    }

    /// In-place inverse FFT without the `1/N` factor (the adjoint of
    /// [`FftPlan::forward`]).
    pub fn inverse_unscaled(&self, buf: &mut [Complex32]) {
        // IDFT_unscaled(x) = conj(DFT(conj(x)))
        for c in buf.iter_mut() {
            *c = c.conj();
        }
        self.forward(buf);
        for c in buf.iter_mut() {
            *c = c.conj();
        }
    }
}

/// Bit-reversal permutation for a power-of-two `n`.
fn bit_reversal_table(n: usize) -> Vec<u32> {
    let bits = n.trailing_zeros();
    (0..n as u32)
        .map(|i| i.reverse_bits() >> (32 - bits))
        .collect()
}

/// Twiddle factors for every butterfly stage of a radix-2 transform,
/// concatenated: stage with half-size `h` contributes `h` factors
/// `e^{-pi i j / h}`, `j in 0..h`.
fn stage_twiddles(n: usize) -> Vec<Complex32> {
    let mut tw = Vec::with_capacity(n.max(1) - 1);
    let mut half = 1usize;
    while half < n {
        for j in 0..half {
            tw.push(Complex32::cis(
                -std::f64::consts::PI * j as f64 / half as f64,
            ));
        }
        half *= 2;
    }
    tw
}

/// Iterative in-place radix-2 Cooley-Tukey with precomputed tables.
///
/// Each stage segment splits into disjoint lower/upper halves and runs
/// through the dispatched butterfly kernel (`crate::simd::butterfly_pass`);
/// the scalar backend reproduces the textbook loop operation for operation.
fn radix2_inplace(buf: &mut [Complex32], rev: &[u32], twiddles: &[Complex32]) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two(), "radix2 needs a power-of-two buffer");
    debug_assert_eq!(rev.len(), n, "bit-reversal table must match the buffer");
    debug_assert_eq!(twiddles.len() + 1, n, "stage twiddles must total n - 1");
    for (i, &r) in rev.iter().enumerate() {
        let j = r as usize;
        if i < j {
            buf.swap(i, j);
        }
    }
    let mut half = 1usize;
    let mut tw_offset = 0usize;
    while half < n {
        let step = half * 2;
        let tw = &twiddles[tw_offset..tw_offset + half];
        let mut start = 0;
        while start < n {
            let (u, v) = buf[start..start + step].split_at_mut(half);
            crate::simd::butterfly_pass(u, v, tw);
            start += step;
        }
        tw_offset += half;
        half = step;
    }
}

thread_local! {
    static PLAN_CACHE: RefCell<HashMap<usize, Rc<FftPlan>>> = RefCell::new(HashMap::new());
}

static PLAN_HITS: AtomicU64 = AtomicU64::new(0);
static PLAN_MISSES: AtomicU64 = AtomicU64::new(0);

/// Plan-cache counters, summed across threads since process start (or the
/// last [`reset_plan_cache_stats`]). slime-fft stays dependency-free, so
/// observability layers read these and publish them as gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served by an already-built plan.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
}

/// Snapshot the plan-cache counters.
pub fn plan_cache_stats() -> PlanCacheStats {
    PlanCacheStats {
        // lint-allow(panic): `.load` here is AtomicU64, not the workspace's
        // serializer `load`; this cuts a misresolved call-graph edge
        hits: PLAN_HITS.load(Ordering::Relaxed),
        misses: PLAN_MISSES.load(Ordering::Relaxed),
    }
}

/// Zero the plan-cache counters (tests; per-run deltas).
pub fn reset_plan_cache_stats() {
    PLAN_HITS.store(0, Ordering::Relaxed);
    PLAN_MISSES.store(0, Ordering::Relaxed);
}

/// Run `f` with a cached plan for length `n`, creating it on first use.
pub fn with_cached_plan<R>(n: usize, f: impl FnOnce(&FftPlan) -> R) -> R {
    let plan = PLAN_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        match cache.entry(n) {
            std::collections::hash_map::Entry::Occupied(e) => {
                PLAN_HITS.fetch_add(1, Ordering::Relaxed);
                e.get().clone()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                PLAN_MISSES.fetch_add(1, Ordering::Relaxed);
                // lint-allow(panic): `.insert` here is hash_map::Entry, not
                // a workspace fn; this cuts a misresolved call-graph edge
                e.insert(Rc::new(FftPlan::new(n))).clone()
            }
        }
    });
    f(&plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    #[test]
    fn bit_reversal_is_an_involution() {
        for n in [2usize, 8, 64, 256] {
            let rev = bit_reversal_table(n);
            for i in 0..n {
                assert_eq!(rev[rev[i] as usize] as usize, i);
            }
        }
    }

    #[test]
    fn bluestein_matches_dft_prime_lengths() {
        for n in [3usize, 7, 11, 13, 31, 97] {
            let x: Vec<Complex32> = (0..n)
                .map(|i| Complex32::new((i as f32 * 0.37).sin(), (i as f32 * 1.7).cos()))
                .collect();
            let plan = FftPlan::new(n);
            let mut buf = x.clone();
            plan.forward(&mut buf);
            let reference = dft(&x);
            for (a, b) in buf.iter().zip(reference.iter()) {
                assert!((a.re - b.re).abs() < 3e-3, "n={n}: {a:?} vs {b:?}");
                assert!((a.im - b.im).abs() < 3e-3, "n={n}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn trivial_lengths() {
        let plan0 = FftPlan::new(0);
        plan0.forward(&mut []);
        let plan1 = FftPlan::new(1);
        let mut one = [Complex32::new(4.0, -2.0)];
        plan1.forward(&mut one);
        assert_eq!(one[0], Complex32::new(4.0, -2.0));
        plan1.inverse(&mut one);
        assert_eq!(one[0], Complex32::new(4.0, -2.0));
    }

    #[test]
    fn plan_cache_reuses_plans() {
        let a = with_cached_plan(40, |p| p as *const FftPlan as usize);
        let b = with_cached_plan(40, |p| p as *const FftPlan as usize);
        assert_eq!(a, b);
    }

    #[test]
    fn plan_cache_stats_count_hits_and_misses() {
        // Counters are process-global; measure deltas on a length no other
        // test uses so parallel test threads can't interfere.
        let before = plan_cache_stats();
        with_cached_plan(4096, |_| ());
        with_cached_plan(4096, |_| ());
        with_cached_plan(4096, |_| ());
        let after = plan_cache_stats();
        assert!(after.misses >= before.misses + 1);
        assert!(after.hits >= before.hits + 2);
    }

    #[test]
    fn linearity_of_forward() {
        let n = 20;
        let x: Vec<Complex32> = (0..n).map(|i| Complex32::new(i as f32, 0.0)).collect();
        let y: Vec<Complex32> = (0..n).map(|i| Complex32::new(0.0, -(i as f32))).collect();
        let plan = FftPlan::new(n);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fy = y.clone();
        plan.forward(&mut fy);
        let mut fxy: Vec<Complex32> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        plan.forward(&mut fxy);
        for ((a, b), s) in fx.iter().zip(fy.iter()).zip(fxy.iter()) {
            let sum = *a + *b;
            assert!((sum.re - s.re).abs() < 1e-2);
            assert!((sum.im - s.im).abs() < 1e-2);
        }
    }
}
