//! Runtime-dispatched SIMD backend: the workspace-wide `SLIME_SIMD` gate and
//! the AVX2+FMA kernels for the FFT hot loops.
//!
//! slime-fft is the dependency leaf shared by every crate that owns SIMD
//! kernels, so the control plane lives here: a one-time CPU-feature probe
//! (`is_x86_feature_detected!("avx2")` + `"fma"`) crossed with a tri-state
//! enabled flag that mirrors the `SLIME_POOL`/`SLIME_THREADS` pattern —
//! resolved lazily from the `SLIME_SIMD` env var, overridable at runtime via
//! [`set_enabled`] (the CLI's `--no-simd`). `slime-tensor` re-exports this
//! module's gate so the whole stack flips with one switch.
//!
//! # Determinism contract
//!
//! Each backend is individually deterministic: kernel results are a pure
//! function of their inputs and the selected backend, never of thread count,
//! pool state, or chunk boundaries. The AVX2 path is *not* bitwise identical
//! to the scalar path — FMA contraction and fixed-lane tree reductions round
//! differently — but lane structure depends only on slice length, so within
//! a backend the threads×pool bitwise guarantee of PR 2/3 still holds. The
//! scalar path reproduces the pre-SIMD loops operation for operation, so
//! `SLIME_SIMD=0` stays bitwise identical to historical results.

use crate::complex::Complex32;
use std::sync::atomic::{AtomicU8, Ordering};

const STATE_UNRESOLVED: u8 = 0;
const STATE_ON: u8 = 1;
const STATE_OFF: u8 = 2;

/// Tri-state enabled flag: resolved lazily from `SLIME_SIMD` on first use,
/// overridable at runtime via [`set_enabled`].
static STATE: AtomicU8 = AtomicU8::new(STATE_UNRESOLVED);

/// The kernel implementation selected at runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar loops — bitwise identical to the pre-SIMD kernels.
    Scalar = 0,
    /// 8-wide AVX2 + FMA kernels (x86_64 only, runtime-probed).
    Avx2Fma = 1,
}

impl Backend {
    /// Stable short name for logs, gauges, and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2Fma => "avx2+fma",
        }
    }

    /// Numeric code for the `simd.backend` trace gauge (0 scalar, 1 avx2+fma).
    pub fn code(self) -> u8 {
        self as u8
    }
}

/// Whether SIMD is requested (env/CLI), resolving `SLIME_SIMD` on first call.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => resolve_from_env(),
    }
}

fn resolve_from_env() -> bool {
    let off = std::env::var("SLIME_SIMD")
        .map(|v| matches!(v.trim(), "0" | "false" | "off"))
        .unwrap_or(false);
    let state = if off { STATE_OFF } else { STATE_ON };
    // A concurrent set_enabled may race this store; last writer wins, which
    // is fine — both derive from explicit user intent.
    STATE.store(state, Ordering::Relaxed);
    !off
}

/// Force SIMD dispatch on or off (wins over `SLIME_SIMD`). The CLI's
/// `--no-simd` calls this; parity tests use it to pin each path.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Whether the host CPU supports the AVX2+FMA kernels (cached probe,
/// independent of the `SLIME_SIMD` gate).
#[cfg(target_arch = "x86_64")]
pub fn avx2_fma_detected() -> bool {
    // The probe itself is cheap but not free; cache it once per process.
    static PROBE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *PROBE.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

/// Non-x86_64 hosts never have the AVX2 kernels.
#[cfg(not(target_arch = "x86_64"))]
pub fn avx2_fma_detected() -> bool {
    false
}

/// The backend active right now: AVX2+FMA iff the gate is open *and* the
/// host supports it. One relaxed atomic load on the hot path.
#[inline]
pub fn backend() -> Backend {
    if enabled() && avx2_fma_detected() {
        Backend::Avx2Fma
    } else {
        Backend::Scalar
    }
}

/// The workspace-wide `SLIME_FUSE` gate: one switch for the fused SIMD
/// epilogues (bias+gelu, add+layernorm, filter×gate) *and* the recorded
/// step-plan replay in `slime-tensor`. Lives next to the `SLIME_SIMD` gate
/// because it is the same kind of control plane: a tri-state flag resolved
/// lazily from the environment, overridable at runtime (`--no-fuse`).
///
/// Fusion is a pure throughput knob within a backend: every fused kernel
/// computes the exact per-element expressions of the unfused composition it
/// replaces, in the same accumulation order, so flipping the gate never
/// changes values (see DESIGN.md §14 "Fusion legality").
pub mod fuse {
    use std::sync::atomic::{AtomicU8, Ordering};

    const STATE_UNRESOLVED: u8 = 0;
    const STATE_ON: u8 = 1;
    const STATE_OFF: u8 = 2;

    /// Tri-state enabled flag: resolved lazily from `SLIME_FUSE` on first
    /// use, overridable at runtime via [`set_enabled`].
    static STATE: AtomicU8 = AtomicU8::new(STATE_UNRESOLVED);

    /// Whether fusion is requested (env/CLI), resolving `SLIME_FUSE` on
    /// first call.
    pub fn enabled() -> bool {
        match STATE.load(Ordering::Relaxed) {
            STATE_ON => true,
            STATE_OFF => false,
            _ => resolve_from_env(),
        }
    }

    fn resolve_from_env() -> bool {
        let off = std::env::var("SLIME_FUSE")
            .map(|v| matches!(v.trim(), "0" | "false" | "off"))
            .unwrap_or(false);
        let state = if off { STATE_OFF } else { STATE_ON };
        // A concurrent set_enabled may race this store; last writer wins,
        // which is fine — both derive from explicit user intent.
        STATE.store(state, Ordering::Relaxed);
        !off
    }

    /// Force fusion on or off (wins over `SLIME_FUSE`). The CLI's
    /// `--no-fuse` calls this; parity tests use it to pin each path.
    pub fn set_enabled(on: bool) {
        STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// FFT kernels: radix-2 butterflies and Bluestein pointwise products over
// interleaved `(re, im)` f32 pairs.
// ---------------------------------------------------------------------------

/// One radix-2 butterfly pass over a segment: for each `j`,
/// `p = v[j] * tw[j]; (u[j], v[j]) = (u[j] + p, u[j] - p)`.
///
/// `u` and `v` are the lower and upper halves of the segment (disjoint by
/// `split_at_mut` in the caller), `tw` the stage twiddles.
#[inline]
pub fn butterfly_pass(u: &mut [Complex32], v: &mut [Complex32], tw: &[Complex32]) {
    debug_assert_eq!(u.len(), v.len());
    debug_assert_eq!(u.len(), tw.len());
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2Fma {
        avx2::butterfly_pass(u, v, tw);
        return;
    }
    butterfly_pass_scalar(u, v, tw);
}

/// Scalar butterfly pass — the exact pre-SIMD loop body.
pub fn butterfly_pass_scalar(u: &mut [Complex32], v: &mut [Complex32], tw: &[Complex32]) {
    debug_assert!(
        v.len() >= u.len() && tw.len() >= u.len(),
        "halves/twiddles shorter than u"
    );
    for j in 0..u.len() {
        let a = u[j];
        let b = v[j] * tw[j];
        u[j] = a + b;
        v[j] = a - b;
    }
}

/// Pointwise complex product `a[k] *= b[k]` (Bluestein chirp/kernel stages).
#[inline]
pub fn cmul_inplace(a: &mut [Complex32], b: &[Complex32]) {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2Fma {
        avx2::cmul_inplace(a, b);
        return;
    }
    cmul_inplace_scalar(a, b);
}

/// Scalar pointwise complex product — the exact pre-SIMD loop body.
pub fn cmul_inplace_scalar(a: &mut [Complex32], b: &[Complex32]) {
    for (ai, bi) in a.iter_mut().zip(b.iter()) {
        *ai *= *bi;
    }
}

/// Widen a real signal into `(re, 0)` complex pairs (the rfft front door).
#[inline]
pub fn widen(src: &[f32], dst: &mut [Complex32]) {
    debug_assert_eq!(src.len(), dst.len());
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2Fma {
        avx2::widen(src, dst);
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = Complex32::new(s, 0.0);
    }
}

/// Extract the real parts of a complex signal (the irfft back door).
#[inline]
pub fn extract_re(src: &[Complex32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2Fma {
        avx2::extract_re(src, dst);
        return;
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = s.re;
    }
}

/// AVX2+FMA implementations. Each public wrapper performs the `unsafe` call
/// into a `#[target_feature]` function; safety rests on [`backend`] only
/// routing here after the runtime probe confirmed AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::Complex32;
    use std::arch::x86_64::*;

    /// Complex multiply of 4 interleaved pairs: `a * b` lane-wise.
    ///
    /// With `a = (ar, ai)` and `b = (br, bi)` interleaved, `fmaddsub`
    /// computes `(ar*br - ai*bi, ai*br + ar*bi)` — the even lanes subtract,
    /// the odd lanes add.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    // lint-allow(unsafe): `#[target_feature]` impl, entered only via the probed wrapper
    unsafe fn cmul4(a: __m256, b: __m256) -> __m256 {
        let b_re = _mm256_moveldup_ps(b); // (br, br) per pair
        let b_im = _mm256_movehdup_ps(b); // (bi, bi) per pair
        let a_sw = _mm256_permute_ps(a, 0b1011_0001); // (ai, ar) per pair
        _mm256_fmaddsub_ps(a, b_re, _mm256_mul_ps(a_sw, b_im))
    }

    #[target_feature(enable = "avx2,fma")]
    // lint-allow(unsafe): `#[target_feature]` impl, entered only via the probed wrapper
    unsafe fn butterfly_pass_impl(u: &mut [Complex32], v: &mut [Complex32], tw: &[Complex32]) {
        debug_assert!(
            v.len() >= u.len() && tw.len() >= u.len(),
            "halves/twiddles shorter than u"
        );
        let half = u.len();
        let up = u.as_mut_ptr() as *mut f32;
        let vp = v.as_mut_ptr() as *mut f32;
        let tp = tw.as_ptr() as *const f32;
        let mut j = 0usize;
        // 4 complex butterflies (8 f32 lanes) per iteration.
        while j + 4 <= half {
            let o = 2 * j;
            let b = cmul4(_mm256_loadu_ps(vp.add(o)), _mm256_loadu_ps(tp.add(o)));
            let a = _mm256_loadu_ps(up.add(o));
            _mm256_storeu_ps(up.add(o), _mm256_add_ps(a, b));
            _mm256_storeu_ps(vp.add(o), _mm256_sub_ps(a, b));
            j += 4;
        }
        while j < half {
            let a = u[j];
            let b = v[j] * tw[j];
            u[j] = a + b;
            v[j] = a - b;
            j += 1;
        }
    }

    pub fn butterfly_pass(u: &mut [Complex32], v: &mut [Complex32], tw: &[Complex32]) {
        // SAFETY: backend() verified avx2+fma before dispatching here.
        // lint-allow(unsafe): runtime-feature-probed AVX2 kernel entry point
        unsafe { butterfly_pass_impl(u, v, tw) }
    }

    #[target_feature(enable = "avx2,fma")]
    // lint-allow(unsafe): `#[target_feature]` impl, entered only via the probed wrapper
    unsafe fn cmul_inplace_impl(a: &mut [Complex32], b: &[Complex32]) {
        debug_assert!(b.len() >= a.len(), "cmul rhs shorter than lhs");
        let n = a.len();
        let ap = a.as_mut_ptr() as *mut f32;
        let bp = b.as_ptr() as *const f32;
        let mut j = 0usize;
        while j + 4 <= n {
            let o = 2 * j;
            let p = cmul4(_mm256_loadu_ps(ap.add(o)), _mm256_loadu_ps(bp.add(o)));
            _mm256_storeu_ps(ap.add(o), p);
            j += 4;
        }
        while j < n {
            a[j] *= b[j];
            j += 1;
        }
    }

    pub fn cmul_inplace(a: &mut [Complex32], b: &[Complex32]) {
        // SAFETY: backend() verified avx2+fma before dispatching here.
        // lint-allow(unsafe): runtime-feature-probed AVX2 kernel entry point
        unsafe { cmul_inplace_impl(a, b) }
    }

    #[target_feature(enable = "avx2,fma")]
    // lint-allow(unsafe): `#[target_feature]` impl, entered only via the probed wrapper
    unsafe fn widen_impl(src: &[f32], dst: &mut [Complex32]) {
        debug_assert!(dst.len() >= src.len(), "widen dst shorter than src");
        let n = src.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr() as *mut f32;
        let zero = _mm256_setzero_ps();
        let mut j = 0usize;
        // 8 reals -> two interleaved (re, 0) octets.
        while j + 8 <= n {
            let x = _mm256_loadu_ps(sp.add(j));
            let lo = _mm256_unpacklo_ps(x, zero);
            let hi = _mm256_unpackhi_ps(x, zero);
            // unpack works within 128-bit halves; reassemble in order.
            _mm256_storeu_ps(dp.add(2 * j), _mm256_permute2f128_ps(lo, hi, 0x20));
            _mm256_storeu_ps(dp.add(2 * j + 8), _mm256_permute2f128_ps(lo, hi, 0x31));
            j += 8;
        }
        while j < n {
            dst[j] = Complex32::new(src[j], 0.0);
            j += 1;
        }
    }

    pub fn widen(src: &[f32], dst: &mut [Complex32]) {
        // SAFETY: backend() verified avx2+fma before dispatching here.
        // lint-allow(unsafe): runtime-feature-probed AVX2 kernel entry point
        unsafe { widen_impl(src, dst) }
    }

    #[target_feature(enable = "avx2,fma")]
    // lint-allow(unsafe): `#[target_feature]` impl, entered only via the probed wrapper
    unsafe fn extract_re_impl(src: &[Complex32], dst: &mut [f32]) {
        debug_assert!(dst.len() >= src.len(), "extract_re dst shorter than src");
        let n = src.len();
        let sp = src.as_ptr() as *const f32;
        let dp = dst.as_mut_ptr();
        let mut j = 0usize;
        while j + 8 <= n {
            let lo = _mm256_loadu_ps(sp.add(2 * j)); // pairs 0..4
            let hi = _mm256_loadu_ps(sp.add(2 * j + 8)); // pairs 4..8
                                                         // Keep even (re) lanes of each 128-bit half, then reorder.
            let mixed = _mm256_shuffle_ps(lo, hi, 0b10_00_10_00);
            let fixed = _mm256_permutevar8x32_ps(mixed, _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7));
            _mm256_storeu_ps(dp.add(j), fixed);
            j += 8;
        }
        while j < n {
            dst[j] = src[j].re;
            j += 1;
        }
    }

    pub fn extract_re(src: &[Complex32], dst: &mut [f32]) {
        // SAFETY: backend() verified avx2+fma before dispatching here.
        // lint-allow(unsafe): runtime-feature-probed AVX2 kernel entry point
        unsafe { extract_re_impl(src, dst) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<Complex32> {
        (0..n)
            .map(|i| Complex32::new((i as f32 * 0.7).sin(), (i as f32 * 0.3).cos()))
            .collect()
    }

    #[test]
    fn fuse_gate_flips() {
        fuse::set_enabled(false);
        assert!(!fuse::enabled());
        fuse::set_enabled(true);
        assert!(fuse::enabled());
    }

    #[test]
    fn backend_tracks_gate() {
        set_enabled(false);
        assert_eq!(backend(), Backend::Scalar);
        set_enabled(true);
        if avx2_fma_detected() {
            assert_eq!(backend(), Backend::Avx2Fma);
        } else {
            assert_eq!(backend(), Backend::Scalar);
        }
        assert_eq!(Backend::Scalar.code(), 0);
        assert_eq!(Backend::Avx2Fma.code(), 1);
        assert_eq!(Backend::Avx2Fma.name(), "avx2+fma");
    }

    #[test]
    fn butterfly_dispatched_matches_scalar() {
        for half in [1usize, 3, 4, 7, 16, 33] {
            let tw: Vec<Complex32> = (0..half)
                .map(|j| Complex32::cis(-std::f64::consts::PI * j as f64 / half as f64))
                .collect();
            let mut u_s = signal(half);
            let mut v_s = signal(half).iter().map(|c| c.conj()).collect::<Vec<_>>();
            let mut u_d = u_s.clone();
            let mut v_d = v_s.clone();
            butterfly_pass_scalar(&mut u_s, &mut v_s, &tw);
            set_enabled(true);
            butterfly_pass(&mut u_d, &mut v_d, &tw);
            for j in 0..half {
                assert!((u_s[j].re - u_d[j].re).abs() < 1e-5, "half={half} j={j}");
                assert!((u_s[j].im - u_d[j].im).abs() < 1e-5, "half={half} j={j}");
                assert!((v_s[j].re - v_d[j].re).abs() < 1e-5, "half={half} j={j}");
                assert!((v_s[j].im - v_d[j].im).abs() < 1e-5, "half={half} j={j}");
            }
        }
    }

    #[test]
    fn cmul_dispatched_matches_scalar() {
        for n in [1usize, 4, 5, 17, 64] {
            let b = signal(n);
            let mut a_s = signal(n);
            let mut a_d = a_s.clone();
            cmul_inplace_scalar(&mut a_s, &b);
            set_enabled(true);
            cmul_inplace(&mut a_d, &b);
            for j in 0..n {
                assert!((a_s[j].re - a_d[j].re).abs() < 1e-5, "n={n} j={j}");
                assert!((a_s[j].im - a_d[j].im).abs() < 1e-5, "n={n} j={j}");
            }
        }
    }

    #[test]
    fn widen_and_extract_round_trip() {
        set_enabled(true);
        for n in [0usize, 1, 7, 8, 9, 16, 31] {
            let x: Vec<f32> = (0..n).map(|i| i as f32 * 0.25 - 1.0).collect();
            let mut c = vec![Complex32::ZERO; n];
            widen(&x, &mut c);
            for (i, ci) in c.iter().enumerate() {
                assert_eq!(ci.re, x[i], "n={n} i={i}");
                assert_eq!(ci.im, 0.0, "n={n} i={i}");
            }
            let mut back = vec![0f32; n];
            extract_re(&c, &mut back);
            assert_eq!(back, x, "n={n}");
        }
    }
}
