//! Property-based validation of the FFT library against its naive oracle
//! and its algebraic identities.
//!
//! Formerly proptest-driven; now exhaustive over every length in the range
//! with a few deterministic seeds each (offline-purity: no external dev
//! dependencies). The sweep is wider than the 48 random cases proptest drew.

use slime_fft::{dft, fft, ifft, irfft, rfft, rfft_len, Complex32};

fn signal(n: usize, seed: u64) -> Vec<Complex32> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 0.7310 + seed as f64 * 1.3).sin() as f32;
            let y = (i as f64 * 1.1709 + seed as f64 * 0.7).cos() as f32;
            Complex32::new(x, y)
        })
        .collect()
}

const SEEDS: [u64; 3] = [0, 17, 83];

/// The fast transform agrees with the O(N^2) oracle for every length,
/// power-of-two or not.
#[test]
fn fft_matches_oracle() {
    for n in 1usize..96 {
        for seed in SEEDS {
            let x = signal(n, seed);
            let mut fast = x.clone();
            fft(&mut fast);
            let slow = dft(&x);
            for (a, b) in fast.iter().zip(slow.iter()) {
                assert!((a.re - b.re).abs() < 5e-3, "n={n}: {a:?} vs {b:?}");
                assert!((a.im - b.im).abs() < 5e-3, "n={n}: {a:?} vs {b:?}");
            }
        }
    }
}

/// ifft(fft(x)) == x.
#[test]
fn roundtrip_identity() {
    for n in 1usize..96 {
        for seed in SEEDS {
            let x = signal(n, seed);
            let mut buf = x.clone();
            fft(&mut buf);
            ifft(&mut buf);
            for (a, b) in buf.iter().zip(x.iter()) {
                assert!((a.re - b.re).abs() < 5e-3, "n={n}");
                assert!((a.im - b.im).abs() < 5e-3, "n={n}");
            }
        }
    }
}

/// Parseval: energy is preserved up to 1/N.
#[test]
fn parseval() {
    for n in 1usize..96 {
        for seed in SEEDS {
            let x = signal(n, seed);
            let mut buf = x.clone();
            fft(&mut buf);
            let time: f64 = x.iter().map(|c| c.norm_sqr() as f64).sum();
            let freq: f64 = buf.iter().map(|c| c.norm_sqr() as f64).sum::<f64>() / n as f64;
            assert!(
                (time - freq).abs() < 1e-2 * time.max(1.0),
                "n={n}: {time} vs {freq}"
            );
        }
    }
}

/// irfft(rfft(x)) == x for real signals of any length.
#[test]
fn real_roundtrip() {
    for n in 1usize..96 {
        for seed in SEEDS {
            let x: Vec<f32> = signal(n, seed).iter().map(|c| c.re).collect();
            let spec = rfft(&x);
            assert_eq!(spec.len(), rfft_len(n));
            let back = irfft(&spec, n);
            for (a, b) in back.iter().zip(x.iter()) {
                assert!((a - b).abs() < 5e-3, "n={n}");
            }
        }
    }
}

/// Time shift <-> phase rotation: shifting a signal circularly by s
/// multiplies bin k by e^{-2 pi i k s / N}.
#[test]
fn shift_theorem() {
    for n in 2usize..48 {
        for shift in 1usize..8 {
            for seed in SEEDS {
                let s = shift % n;
                let x = signal(n, seed);
                let shifted: Vec<Complex32> = (0..n).map(|i| x[(i + n - s) % n]).collect();
                let mut fx = x.clone();
                fft(&mut fx);
                let mut fs = shifted;
                fft(&mut fs);
                for k in 0..n {
                    let phase =
                        Complex32::cis(-2.0 * std::f64::consts::PI * (k * s) as f64 / n as f64);
                    let expected = fx[k] * phase;
                    assert!((expected.re - fs[k].re).abs() < 1e-2, "n={n} k={k}");
                    assert!((expected.im - fs[k].im).abs() < 1e-2, "n={n} k={k}");
                }
            }
        }
    }
}
