//! The persistent worker pool: lazily spawned `std::thread` workers, a
//! one-slot job board guarded by a mutex/condvar pair, and an atomic chunk
//! queue.
//!
//! Design constraints (see DESIGN.md "Threading model"):
//!
//! * **Scoped execution over persistent workers.** Jobs borrow the caller's
//!   stack (the task closure is handed out by reference), yet workers are
//!   long-lived so their thread-local state — most importantly the FFT plan
//!   cache in `slime-fft` — survives across jobs. Soundness comes from
//!   `run` blocking until every chunk has completed before it returns: the
//!   erased `'static` pointer in [`Job`] is never dereferenced after the
//!   borrow it came from ends.
//! * **Chunk grid fixed by the caller.** The pool executes chunk indices
//!   `0..n_chunks`; which thread runs which chunk is racy, but chunk
//!   boundaries never depend on the thread count, so any accumulation that
//!   stays inside one chunk (or folds chunk results in index order) is
//!   bitwise identical from 1 to N threads.
//! * **Caller participates.** The publishing thread is worker zero; with
//!   `SLIME_THREADS=1` (or a single-chunk grid, or a nested call from
//!   inside a job) no pool machinery is touched at all and the chunks run
//!   inline on the caller, in index order.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Cumulative pool counters (see [`crate::pool_stats`]). The pool stays
/// dependency-free, so observability layers poll these and republish them
/// as trace gauges; all updates are relaxed and off the chunk fast path.
pub(crate) static JOBS_PUBLISHED: AtomicU64 = AtomicU64::new(0);
pub(crate) static JOBS_SERIAL: AtomicU64 = AtomicU64::new(0);
pub(crate) static CHUNKS_EXECUTED: AtomicU64 = AtomicU64::new(0);
pub(crate) static MAX_GRID: AtomicU64 = AtomicU64::new(0);
pub(crate) static WORKERS_SPAWNED: AtomicU64 = AtomicU64::new(0);

fn note_grid(n_chunks: usize) {
    let n = n_chunks as u64;
    CHUNKS_EXECUTED.fetch_add(n, Ordering::Relaxed);
    MAX_GRID.fetch_max(n, Ordering::Relaxed);
}

/// One published job: a chunk-indexed task plus its progress counters.
///
/// The task pointer is lifetime-erased; [`Pool::run`] guarantees the
/// referent outlives every dereference by blocking until `pending` hits
/// zero before returning (or unwinding).
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    /// Next chunk index to claim.
    next: AtomicUsize,
    /// Total chunks in the grid.
    n_chunks: usize,
    /// Chunks not yet completed; the publisher waits for this to hit 0.
    pending: AtomicUsize,
    /// Number of pool workers that have joined this job so far; workers
    /// beyond `worker_cap` bow out so `set_threads` can shrink effective
    /// parallelism below the number of already-spawned threads.
    workers: AtomicUsize,
    worker_cap: usize,
    /// Set if any chunk panicked; the publisher re-panics after the join.
    panicked: AtomicBool,
    /// Token from [`crate::ParObserver::job_begin`]; `0` disables the
    /// per-worker observer hooks for this job.
    obs_token: u64,
}

// SAFETY: the raw task pointer is only dereferenced while the publisher of
// the job is blocked inside `run`, which keeps the referent alive; all
// counters are atomics.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

/// The one-slot job board. `seq` bumps on every publish so sleeping
/// workers can tell a fresh job from the one they already drained.
struct Slot {
    seq: u64,
    job: Option<Arc<Job>>,
}

struct Shared {
    slot: Mutex<Slot>,
    /// Workers sleep here between jobs.
    work_cv: Condvar,
    /// The publisher sleeps here until `pending` reaches zero.
    done_cv: Condvar,
}

pub(crate) struct Pool {
    shared: Arc<Shared>,
    /// Serializes top-level `run` calls (the job board holds one job).
    run_lock: Mutex<()>,
    /// Persistent workers spawned so far (grows lazily, never shrinks).
    spawned: Mutex<usize>,
}

thread_local! {
    /// True while this thread is executing chunks of some job. Nested
    /// `parallel_for` calls observe it and run inline instead of
    /// deadlocking on the single job slot.
    static IN_JOB: Cell<bool> = const { Cell::new(false) };

    /// Stable pool-worker id: `spawn index + 1` on persistent workers,
    /// `0` everywhere else (notably the publishing thread). Deliberately
    /// not `thread::current().id()` — the nondeterminism lint (L9) bans
    /// ThreadId-keyed logic, and a dense id doubles as a timeline lane.
    static WORKER_ID: Cell<usize> = const { Cell::new(0) };
}

/// See [`crate::current_worker`].
pub(crate) fn current_worker() -> usize {
    WORKER_ID.with(Cell::get)
}

static POOL: OnceLock<Pool> = OnceLock::new();

pub(crate) fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        shared: Arc::new(Shared {
            slot: Mutex::new(Slot { seq: 0, job: None }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }),
        run_lock: Mutex::new(()),
        spawned: Mutex::new(0),
    })
}

/// Whether the current thread is already inside a pool job.
pub(crate) fn in_job() -> bool {
    IN_JOB.with(Cell::get)
}

impl Pool {
    /// Spawn persistent workers until `want` exist. Workers are daemon-like:
    /// they block on the job board forever and die with the process.
    fn ensure_workers(&self, want: usize) {
        let mut spawned = self.spawned.lock().unwrap_or_else(|e| e.into_inner());
        while *spawned < want {
            let shared = Arc::clone(&self.shared);
            let id = *spawned;
            thread::Builder::new()
                .name(format!("slime-par-{id}"))
                .spawn(move || {
                    WORKER_ID.with(|c| c.set(id + 1));
                    worker_loop(shared)
                })
                // lint-allow(panic): no thread means no pool; nothing to degrade to
                .expect("slime-par: failed to spawn worker thread");
            *spawned += 1;
            WORKERS_SPAWNED.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Execute `task(i)` for every chunk index `i in 0..n_chunks`, using up
    /// to [`crate::num_threads`] threads (publisher included). Blocks until
    /// all chunks are done; re-panics on the caller if any chunk panicked.
    /// `elems`/`chunk` are pure metadata forwarded to the observer.
    pub(crate) fn run(
        &self,
        elems: usize,
        chunk: usize,
        n_chunks: usize,
        task: &(dyn Fn(usize) + Sync),
    ) {
        let threads = crate::num_threads();
        let obs = crate::observer();
        if n_chunks <= 1 || threads <= 1 || in_job() {
            // Serial fast path: same chunk grid, index order, zero dispatch.
            JOBS_SERIAL.fetch_add(1, Ordering::Relaxed);
            note_grid(n_chunks);
            let token = obs.map_or(0, |o| o.job_begin(elems, chunk, n_chunks, true));
            for i in 0..n_chunks {
                task(i);
            }
            if token != 0 {
                if let Some(o) = obs {
                    o.job_end(token);
                }
            }
            return;
        }

        JOBS_PUBLISHED.fetch_add(1, Ordering::Relaxed);
        note_grid(n_chunks);
        let _top = self.run_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.ensure_workers(threads - 1);

        // SAFETY: the erased pointer outlives every dereference because this
        // function does not return (or unwind) until `pending` reaches zero,
        // and workers never touch `task` once all chunks are claimed.
        let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        let obs_token = obs.map_or(0, |o| o.job_begin(elems, chunk, n_chunks, false));
        let job = Arc::new(Job {
            task,
            next: AtomicUsize::new(0),
            n_chunks,
            pending: AtomicUsize::new(n_chunks),
            workers: AtomicUsize::new(0),
            worker_cap: threads - 1,
            panicked: AtomicBool::new(false),
            obs_token,
        });
        {
            let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            slot.seq += 1;
            slot.job = Some(Arc::clone(&job));
            self.shared.work_cv.notify_all();
        }

        // The publisher is worker zero.
        execute(&self.shared, &job);

        let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        while job.pending.load(Ordering::Acquire) != 0 {
            slot = self
                .shared
                .done_cv
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
        slot.job = None;
        drop(slot);

        if obs_token != 0 {
            if let Some(o) = obs {
                o.job_end(obs_token);
            }
        }

        if job.panicked.load(Ordering::Relaxed) {
            // lint-allow(panic): deliberate re-panic propagating a worker panic to the publisher
            panic!("slime-par: a parallel task panicked (see worker backtrace above)");
        }
    }
}

/// Claim and run chunks until the queue is exhausted.
fn execute(shared: &Shared, job: &Job) {
    let obs = if job.obs_token != 0 {
        crate::observer()
    } else {
        None
    };
    let worker = current_worker();
    if let Some(o) = obs {
        o.worker_begin(job.obs_token, worker);
    }
    let mut claimed = 0u64;
    IN_JOB.with(|c| c.set(true));
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.n_chunks {
            break;
        }
        claimed += 1;
        // SAFETY: see `Job::task`.
        let task = unsafe { &*job.task };
        if panic::catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
            job.panicked.store(true, Ordering::Relaxed);
        }
        if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last chunk: wake the publisher. Taking the slot lock first
            // closes the check-then-wait race on `done_cv`.
            let _g = shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            shared.done_cv.notify_all();
        }
    }
    IN_JOB.with(|c| c.set(false));
    if let Some(o) = obs {
        o.worker_end(job.obs_token, worker, claimed);
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if slot.seq != seen {
                    seen = slot.seq;
                    if let Some(j) = slot.job.clone() {
                        break j;
                    }
                }
                slot = shared.work_cv.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
        };
        // Respect the job's thread budget: late workers beyond the cap go
        // back to sleep instead of adding parallelism the caller turned off.
        if job.workers.fetch_add(1, Ordering::Relaxed) < job.worker_cap {
            execute(&shared, &job);
        }
    }
}
