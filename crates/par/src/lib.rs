//! # slime-par
//!
//! A zero-dependency (std-only) thread pool for the SLIME4Rec workspace,
//! built so that **parallel execution is bitwise identical to serial
//! execution**. The offline-purity rule bans rayon; this crate is the
//! sanctioned substitute, and the `thread-discipline` lint bans raw
//! `thread::spawn` everywhere else so all parallelism flows through here.
//!
//! Determinism contract (every public helper obeys it):
//!
//! * The chunk grid is a pure function of `(n, chunk)` — never of the
//!   thread count. Threads race only over *which* chunk they claim, not
//!   over where chunk boundaries fall.
//! * Floating-point accumulation must stay inside one chunk, or go through
//!   [`parallel_map_reduce`], which folds per-chunk partials in ascending
//!   chunk order on the calling thread.
//!
//! Under those two rules `SLIME_THREADS=1` and `SLIME_THREADS=64` produce
//! identical bits, which is what the end-to-end determinism test in
//! `crates/core/tests/determinism.rs` asserts.
//!
//! Thread count resolution: [`set_threads`] override, else the
//! `SLIME_THREADS` environment variable, else `available_parallelism()`.
//! Workers are spawned lazily on first parallel call and persist for the
//! process lifetime, so per-thread caches (e.g. the FFT plan cache in
//! `slime-fft`) are built once per worker, not once per call.

mod pool;

use std::marker::PhantomData;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Resolved thread count; 0 means "not yet initialized".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Upper bound on the pool size: beyond this, scheduling overhead dwarfs
/// any win on the array sizes this workspace handles.
const MAX_THREADS: usize = 256;

/// Hardware parallelism as reported by the OS (1 if unknown).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn resolve_from_env() -> usize {
    match std::env::var("SLIME_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n.min(MAX_THREADS),
            _ => {
                // lint-allow(raw-print): one-time startup warning about a bad env var
                eprintln!("slime-par: ignoring invalid SLIME_THREADS={v:?} (want an integer >= 1)");
                available_threads()
            }
        },
        Err(_) => available_threads(),
    }
}

/// The number of threads parallel helpers will use (publisher included).
///
/// First call resolves `SLIME_THREADS` / `available_parallelism()` and
/// caches the result; [`set_threads`] overrides it at any time.
pub fn num_threads() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let resolved = resolve_from_env();
    // Racing first calls resolve to the same value; keep whichever landed.
    let _ = THREADS.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
    THREADS.load(Ordering::Relaxed)
}

/// Override the thread count (CLI `--threads`, bench sweeps, tests).
/// Values are clamped to `1..=256`. Takes effect for subsequent parallel
/// calls; already-spawned workers beyond the new count idle harmlessly.
pub fn set_threads(n: usize) {
    THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// Cumulative pool counters since process start (or the last
/// [`reset_pool_stats`]). The pool has no dependencies, so trace layers
/// poll this and republish the numbers as gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Jobs dispatched to the worker pool.
    pub jobs_published: u64,
    /// Grids that ran on the serial fast path (single chunk, one thread,
    /// or a nested call).
    pub jobs_serial: u64,
    /// Total chunks executed across all jobs.
    pub chunks_executed: u64,
    /// Largest chunk grid seen (the peak queue depth of the job board).
    pub max_grid: u64,
    /// Persistent workers spawned (monotone; workers never exit).
    pub workers_spawned: u64,
}

/// Snapshot the pool counters.
pub fn pool_stats() -> ParStats {
    ParStats {
        jobs_published: pool::JOBS_PUBLISHED.load(Ordering::Relaxed),
        jobs_serial: pool::JOBS_SERIAL.load(Ordering::Relaxed),
        chunks_executed: pool::CHUNKS_EXECUTED.load(Ordering::Relaxed),
        max_grid: pool::MAX_GRID.load(Ordering::Relaxed),
        workers_spawned: pool::WORKERS_SPAWNED.load(Ordering::Relaxed),
    }
}

/// Scheduling hooks for an external profiling layer (`slime-trace`).
///
/// slime-par is a dependency-free leaf and the nondeterminism lint (L9)
/// bans clock reads in numeric crates, so the pool cannot time itself.
/// Instead it reports scheduling *events* through this trait and the
/// observer — installed once, typically by `slime-trace` when tracing is
/// enabled — owns every clock read. With no observer installed the only
/// cost on the dispatch path is one relaxed atomic load per job.
///
/// Contract for implementations:
///
/// * Methods must not panic and must not call back into slime-par
///   (`worker_begin`/`worker_end` run on pool worker threads).
/// * `job_begin` returns a token identifying the job; returning `0` means
///   "not interested" and suppresses the per-worker hooks for that job.
/// * For published (non-serial) jobs, every participating thread brackets
///   its chunk-claiming loop with `worker_begin`/`worker_end` (`worker` is
///   `0` for the publishing thread, `1..` for pool workers — see
///   [`current_worker`]). `job_end` fires on the publishing thread after
///   all chunks completed. Serial jobs report only `job_begin`/`job_end`.
pub trait ParObserver: Sync {
    /// A job grid is about to run. `elems`/`chunk` describe the caller's
    /// request (`n_chunks = ceil(elems / chunk)` for the `parallel_*`
    /// helpers); `serial` is true on the inline fast path.
    fn job_begin(&self, elems: usize, chunk: usize, n_chunks: usize, serial: bool) -> u64;
    /// A thread joined job `token` and will start claiming chunks.
    fn worker_begin(&self, token: u64, worker: usize);
    /// A thread finished claiming chunks for job `token` (`chunks` of them).
    fn worker_end(&self, token: u64, worker: usize, chunks: u64);
    /// All chunks of job `token` completed; the publisher is about to
    /// return to its caller.
    fn job_end(&self, token: u64);
}

static OBSERVER: OnceLock<&'static dyn ParObserver> = OnceLock::new();

/// Install the process-wide scheduling observer. The first call wins;
/// later calls are ignored (the observer is wired into running worker
/// threads and cannot be swapped out safely).
pub fn set_observer(obs: &'static dyn ParObserver) {
    let _ = OBSERVER.set(obs);
}

#[inline]
pub(crate) fn observer() -> Option<&'static dyn ParObserver> {
    OBSERVER.get().copied()
}

/// Stable id of the calling thread within the pool: `0` for any thread
/// that is not a pool worker (including the publisher, which participates
/// as worker zero), `1..` for persistent pool workers.
pub fn current_worker() -> usize {
    pool::current_worker()
}

/// Zero the pool counters except `workers_spawned` (workers persist, so
/// that count reflects live state rather than a per-run delta).
pub fn reset_pool_stats() {
    pool::JOBS_PUBLISHED.store(0, Ordering::Relaxed);
    pool::JOBS_SERIAL.store(0, Ordering::Relaxed);
    pool::CHUNKS_EXECUTED.store(0, Ordering::Relaxed);
    pool::MAX_GRID.store(0, Ordering::Relaxed);
}

/// Run `f(start, end)` over every chunk of `0..n`, in parallel.
///
/// The grid is `ceil(n / chunk)` half-open ranges of length `chunk` (the
/// last may be shorter), identical at every thread count. `f` must only
/// write state that is disjoint between chunks (see [`UnsafeSlice`] for
/// handing out disjoint views of one buffer).
///
/// Nested calls from inside a parallel task run inline on the worker.
pub fn parallel_for(n: usize, chunk: usize, f: impl Fn(usize, usize) + Sync) {
    if n == 0 {
        return;
    }
    let chunk = chunk.max(1);
    let n_chunks = n.div_ceil(chunk);
    pool::pool().run(n, chunk, n_chunks, &|i| {
        let start = i * chunk;
        f(start, (start + chunk).min(n));
    });
}

/// Deterministic chunked reduction: `map(start, end)` produces one partial
/// per chunk (in parallel), then the partials are folded with `reduce` in
/// ascending chunk order on the calling thread. Returns `None` for `n == 0`.
///
/// Because the grid depends only on `(n, chunk)` and the fold order is
/// fixed, the result is bitwise identical for any thread count — including
/// non-associative `f32`/`f64` sums.
pub fn parallel_map_reduce<T: Send>(
    n: usize,
    chunk: usize,
    map: impl Fn(usize, usize) -> T + Sync,
    mut reduce: impl FnMut(T, T) -> T,
) -> Option<T> {
    if n == 0 {
        return None;
    }
    let chunk = chunk.max(1);
    let n_chunks = n.div_ceil(chunk);
    let mut partials: Vec<MaybeUninit<T>> = (0..n_chunks).map(|_| MaybeUninit::uninit()).collect();
    {
        let out = UnsafeSlice::new(&mut partials);
        pool::pool().run(n, chunk, n_chunks, &|i| {
            let start = i * chunk;
            let v = map(start, (start + chunk).min(n));
            // SAFETY: each chunk index is claimed exactly once, so slot `i`
            // has exactly one writer and no readers until the join.
            unsafe { out.write(i, MaybeUninit::new(v)) };
        });
    }
    // SAFETY: `run` returned, so every slot was initialized exactly once.
    let mut it = partials
        .into_iter()
        .map(|s| unsafe { s.assume_init_read() });
    let first = it.next()?;
    Some(it.fold(first, |acc, v| reduce(acc, v)))
}

/// Parallel map over a slice, preserving order: `out[i] = f(i, &items[i])`.
/// `chunk` items are processed per task.
pub fn parallel_map<I: Sync, T: Send>(
    items: &[I],
    chunk: usize,
    f: impl Fn(usize, &I) -> T + Sync,
) -> Vec<T> {
    let n = items.len();
    let mut out: Vec<MaybeUninit<T>> = (0..n).map(|_| MaybeUninit::uninit()).collect();
    {
        let w = UnsafeSlice::new(&mut out);
        parallel_for(n, chunk, |lo, hi| {
            // lint-proof(l8): w[lo .. hi]
            for i in lo..hi {
                // SAFETY: chunks partition 0..n, so element `i` has exactly
                // one writer.
                unsafe { w.write(i, MaybeUninit::new(f(i, &items[i]))) };
            }
        });
    }
    // SAFETY: every element was initialized exactly once; MaybeUninit<T>
    // and T share layout.
    let mut out = ManuallyDrop::new(out);
    unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut T, out.len(), out.capacity()) }
}

/// An unsynchronized shared view of a mutable slice, for parallel tasks
/// that write provably disjoint elements (matmul row blocks, per-batch FFT
/// planes, per-vocab-row gradient scatters).
///
/// All access methods are `unsafe`: the caller must guarantee that no two
/// concurrent tasks touch the same index, and that nobody reads an element
/// while another task writes it. The kernels in `slime-tensor` uphold this
/// by deriving every index range from the (thread-count-independent) chunk
/// grid.
/// With the `sanitize-race` feature the slice additionally keeps a shadow
/// interval log: every `write`/`slice_mut` records its half-open index
/// range (plus a stable per-thread worker tag) under a mutex, and the
/// first claim that overlaps an earlier one panics *before* any aliasing
/// access is created. The log never touches payload bytes, so enabling the
/// sanitizer is bitwise-neutral — the determinism matrix must pass
/// unchanged under it.
pub struct UnsafeSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
    #[cfg(feature = "sanitize-race")]
    shadow: sanitize::ShadowLog,
}

// SAFETY: the pointer came from an exclusive borrow; disjointness of
// concurrent access is the caller's obligation (every method is unsafe).
unsafe impl<T: Send> Send for UnsafeSlice<'_, T> {}
unsafe impl<T: Send> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wrap an exclusively borrowed slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        UnsafeSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
            #[cfg(feature = "sanitize-race")]
            shadow: sanitize::ShadowLog::new(),
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Overwrite element `i` (the old value is not dropped — intended for
    /// `Copy` payloads and `MaybeUninit` slots).
    ///
    /// # Safety
    /// `i < len()`, and no other task reads or writes element `i`
    /// concurrently.
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        #[cfg(feature = "sanitize-race")]
        self.shadow.claim(i, i + 1);
        self.ptr.add(i).write(value);
    }

    /// An exclusive sub-slice `[start, start + len)`.
    ///
    /// # Safety
    /// The range is in bounds and no other task touches any element of it
    /// for the lifetime of the returned borrow.
    #[allow(clippy::mut_from_ref)] // the whole point: caller-proven disjointness
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        debug_assert!(start + len <= self.len);
        #[cfg(feature = "sanitize-race")]
        self.shadow.claim(start, start + len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }
}

/// Shadow interval log backing the `sanitize-race` feature: a dynamic
/// cross-check of the static `disjoint-writer` (L8) lint proofs. Form-2
/// proofs (`target[elem for i in lo..hi]`) assert per-element disjointness
/// the lint cannot discharge statically; this log discharges it at runtime.
#[cfg(feature = "sanitize-race")]
mod sanitize {
    use std::cell::Cell;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// Monotone source of worker tags. Deliberately not
    /// `thread::current().id()`: the nondeterminism lint (L9) bans
    /// ThreadId-keyed logic in numeric crates, and a small dense counter
    /// reads better in panic messages anyway.
    static NEXT_WORKER_TAG: AtomicU64 = AtomicU64::new(1);

    thread_local! {
        static WORKER_TAG: Cell<u64> = const { Cell::new(0) };
    }

    /// Stable per-thread tag, assigned on first claim from that thread.
    fn worker_tag() -> u64 {
        WORKER_TAG.with(|t| {
            if t.get() == 0 {
                t.set(NEXT_WORKER_TAG.fetch_add(1, Ordering::Relaxed));
            }
            t.get()
        })
    }

    /// Per-`UnsafeSlice` log of half-open claims, keyed by claim start.
    /// The map invariant is that stored intervals are pairwise disjoint,
    /// so the predecessor of a new claim's end is the only candidate
    /// overlap — one `range` probe per claim.
    pub(crate) struct ShadowLog {
        claims: Mutex<BTreeMap<usize, (usize, u64)>>,
    }

    impl ShadowLog {
        pub(crate) fn new() -> ShadowLog {
            ShadowLog {
                claims: Mutex::new(BTreeMap::new()),
            }
        }

        /// Record `[start, end)` for the calling worker; panic on the
        /// first overlap with any earlier claim on this slice. The panic
        /// fires *before* the caller creates its aliasing view, so a
        /// caught violation never executes an actual racy write.
        pub(crate) fn claim(&self, start: usize, end: usize) {
            if start >= end {
                return;
            }
            let me = worker_tag();
            let mut map = self.claims.lock().unwrap_or_else(|e| e.into_inner());
            if let Some((&s, &(e, w))) = map.range(..end).next_back() {
                if e > start {
                    // lint-allow(panic): panicking on overlap is the sanitizer's contract
                    panic!(
                        "sanitize-race: overlapping UnsafeSlice claims: \
                         [{start}, {end}) by worker {me} overlaps [{s}, {e}) by worker {w}"
                    );
                }
            }
            map.insert(start, (end, me));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    /// Tests that mutate the global thread count serialize through here and
    /// restore a known state on drop.
    static THREAD_KNOB: Mutex<()> = Mutex::new(());

    struct Knob(std::sync::MutexGuard<'static, ()>);
    fn knob(n: usize) -> Knob {
        let g = THREAD_KNOB.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(n);
        Knob(g)
    }
    impl Drop for Knob {
        fn drop(&mut self) {
            set_threads(4);
        }
    }

    #[test]
    fn chunk_grid_covers_everything_exactly_once() {
        let _k = knob(4);
        for (n, chunk) in [
            (1usize, 1usize),
            (7, 3),
            (100, 1),
            (100, 7),
            (64, 64),
            (5, 100),
        ] {
            let seen = Mutex::new(vec![0u32; n]);
            parallel_for(n, chunk, |lo, hi| {
                assert!(lo < hi && hi <= n);
                assert!(hi - lo <= chunk);
                let mut s = seen.lock().unwrap();
                for i in lo..hi {
                    s[i] += 1;
                }
            });
            assert!(seen.into_inner().unwrap().iter().all(|&c| c == 1));
        }
    }

    #[test]
    fn map_reduce_is_bitwise_stable_across_thread_counts() {
        // A deliberately ill-conditioned sum: reassociation changes bits.
        let xs: Vec<f32> = (0..10_000)
            .map(|i| ((i as f32 * 0.731).sin() * 1e4).exp2().fract() - 0.5)
            .collect();
        let sum = |_k: &Knob| {
            parallel_map_reduce(
                xs.len(),
                97,
                |lo, hi| xs[lo..hi].iter().sum::<f32>(),
                |a, b| a + b,
            )
            .unwrap()
        };
        let k1 = knob(1);
        let serial = sum(&k1);
        drop(k1);
        for t in [2, 3, 8] {
            let kt = knob(t);
            assert_eq!(serial.to_bits(), sum(&kt).to_bits(), "threads={t}");
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let _k = knob(4);
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(&items, 13, |i, &v| {
            assert_eq!(i, v);
            v * 2
        });
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn nested_calls_run_inline_without_deadlock() {
        let _k = knob(4);
        let hits = Mutex::new(0usize);
        parallel_for(8, 1, |_, _| {
            parallel_for(8, 1, |lo, hi| {
                *hits.lock().unwrap() += hi - lo;
            });
        });
        assert_eq!(hits.into_inner().unwrap(), 64);
    }

    #[test]
    fn pool_actually_uses_multiple_threads() {
        let _k = knob(4);
        let ids = Mutex::new(HashSet::new());
        // Many tiny chunks with a touch of work so workers get a chance to
        // claim some; on a single-core box this may still collapse to one
        // thread, so assert coverage rather than concurrency.
        let n = 64;
        let seen = Mutex::new(vec![false; n]);
        parallel_for(n, 1, |lo, _| {
            std::thread::sleep(std::time::Duration::from_micros(200));
            ids.lock().unwrap().insert(std::thread::current().id());
            seen.lock().unwrap()[lo] = true;
        });
        assert!(seen.into_inner().unwrap().iter().all(|&b| b));
        assert!(!ids.into_inner().unwrap().is_empty());
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let _k = knob(4);
        let r = std::panic::catch_unwind(|| {
            parallel_for(16, 1, |lo, _| {
                if lo == 7 {
                    panic!("boom");
                }
            });
        });
        assert!(r.is_err());
        // The pool must still be usable afterwards.
        let total = parallel_map_reduce(100, 9, |lo, hi| (hi - lo) as u64, |a, b| a + b);
        assert_eq!(total, Some(100));
    }

    #[test]
    fn unsafe_slice_disjoint_writes() {
        let _k = knob(4);
        let mut buf = vec![0u64; 257];
        {
            let w = UnsafeSlice::new(&mut buf);
            parallel_for(257, 10, |lo, hi| {
                let s = unsafe { w.slice_mut(lo, hi - lo) };
                for (off, v) in s.iter_mut().enumerate() {
                    *v = (lo + off) as u64;
                }
            });
        }
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn set_threads_clamps_and_num_threads_is_positive() {
        let _k = knob(4);
        set_threads(0);
        assert_eq!(num_threads(), 1);
        set_threads(100_000);
        assert_eq!(num_threads(), MAX_THREADS);
        assert!(available_threads() >= 1);
    }

    #[test]
    fn pool_stats_count_jobs_and_chunks() {
        let k = knob(4);
        let before = pool_stats();
        parallel_for(64, 1, |_, _| {});
        let after = pool_stats();
        assert!(after.jobs_published > before.jobs_published);
        assert!(after.chunks_executed >= before.chunks_executed + 64);
        assert!(after.max_grid >= 64);
        drop(k);

        let _k1 = knob(1);
        let before = pool_stats();
        parallel_for(8, 1, |_, _| {});
        let after = pool_stats();
        assert!(after.jobs_serial > before.jobs_serial);
    }

    #[test]
    fn empty_inputs_are_no_ops() {
        let _k = knob(4);
        parallel_for(0, 8, |_, _| panic!("must not run"));
        assert_eq!(parallel_map_reduce(0, 8, |_, _| 1u32, |a, b| a + b), None);
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, 4, |_, &v| v).is_empty());
    }
}
