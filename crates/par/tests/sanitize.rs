//! Failure-path tests for the `sanitize-race` shadow log: a deliberate
//! overlap must be caught, a caught overlap must not wedge the pool, and
//! disjoint writes must pass untouched (the sanitizer is observe-only).
//!
//! Run with `cargo test -p slime-par --features sanitize-race`.
#![cfg(feature = "sanitize-race")]

use std::sync::Mutex;

use slime_par::{parallel_for, parallel_map_reduce, set_threads, UnsafeSlice};

/// Tests here mutate the global thread count; serialize them and restore
/// the default on drop so order does not matter.
static THREAD_KNOB: Mutex<()> = Mutex::new(());

struct Knob(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);
fn knob(n: usize) -> Knob {
    let g = THREAD_KNOB.lock().unwrap_or_else(|e| e.into_inner());
    set_threads(n);
    Knob(g)
}
impl Drop for Knob {
    fn drop(&mut self) {
        set_threads(4);
    }
}

#[test]
#[should_panic(expected = "sanitize-race: overlapping UnsafeSlice claims")]
fn deliberate_overlap_is_caught() {
    let _k = knob(1);
    let mut buf = vec![0u64; 8];
    let w = UnsafeSlice::new(&mut buf);
    // Two claims on element 3 from the same scope: the second one must
    // panic at claim time, before any aliasing write happens.
    unsafe { w.write(3, 1) };
    unsafe { w.write(3, 2) };
}

#[test]
fn overlap_inside_parallel_for_propagates_and_pool_recovers() {
    let _k = knob(4);
    let r = std::panic::catch_unwind(|| {
        let mut buf = vec![0u64; 65];
        let w = UnsafeSlice::new(&mut buf);
        parallel_for(64, 8, |lo, hi| {
            // Deliberate off-by-one: every chunk also claims its right
            // neighbour's first element, so adjacent chunks overlap. The
            // claim panics before `from_raw_parts_mut` runs, so no
            // aliasing slice is ever created.
            let _ = unsafe { w.slice_mut(lo, (hi - lo) + 1) };
        });
    });
    assert!(r.is_err(), "overlapping claims must panic through the pool");
    // No deadlock, and the pool is still usable after the unwind.
    let total = parallel_map_reduce(100, 9, |lo, hi| (hi - lo) as u64, |a, b| a + b);
    assert_eq!(total, Some(100));
}

#[test]
fn disjoint_writes_pass_under_the_sanitizer() {
    let _k = knob(4);
    let mut buf = vec![0u64; 257];
    {
        let w = UnsafeSlice::new(&mut buf);
        parallel_for(257, 10, |lo, hi| {
            let s = unsafe { w.slice_mut(lo, hi - lo) };
            for (off, v) in s.iter_mut().enumerate() {
                *v = (lo + off) as u64;
            }
        });
    }
    for (i, v) in buf.iter().enumerate() {
        assert_eq!(*v, i as u64, "sanitizer must not perturb payloads");
    }
}
