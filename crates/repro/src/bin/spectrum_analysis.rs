//! Figure-1 companion: measure the *behaviour spectrum* of each synthetic
//! dataset — the frequency decomposition of item-recurrence signals the
//! paper's introduction motivates — and verify the generators plant the
//! structure SLIME4Rec is designed to exploit.
//!
//! (This experiment has no numbered table in the paper; it validates the
//! dataset substitution documented in DESIGN.md §1.)

use slime_data::spectrum::analyze;
use slime_repro::{ExperimentCtx, ResultsWriter, Table};

fn main() {
    let ctx = ExperimentCtx::from_env();
    let mut writer = ResultsWriter::new(&ctx, "spectrum_analysis");
    let mut table = Table::new(
        "Behaviour spectra of the synthetic datasets (recurrence signals)",
        &["dataset", "signals", "low-band energy", "high-band energy"],
    );
    let mut reports = Vec::new();
    for key in ctx.dataset_keys() {
        let ds = ctx.dataset(key);
        let window = if key == "ml-1m" { 32 } else { 8 };
        let r = analyze(&ds, window, 2);
        table.push(vec![
            key.to_string(),
            r.signals.to_string(),
            format!("{:.3}", r.low_band_energy),
            format!("{:.3}", r.high_band_energy),
        ]);
        println!(
            "[{key}] spectrum (DC-stripped, window {}): {:?}",
            r.window,
            r.mean_spectrum
                .iter()
                .map(|v| (v * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
        reports.push((key.to_string(), r));
    }
    println!("{}", table.render());
    println!(
        "interpretation: both bands carry real mass on every dataset — users mix\n\
         short repeat cycles (high band) with slow drift (low band), the premise\n\
         of the paper's Figure 1."
    );
    writer.add("reports", &reports);
    let path = writer.finish();
    println!("results written to {}", path.display());
}
