//! Figure 5(a,b) — interaction of the alpha sweep with the maximum input
//! sequence length N, on a sparse (beauty) and a dense (ml-1m) dataset.
//!
//! Paper shape to reproduce: on the sparse dataset, growing N beyond a
//! moderate value stops helping; on the dense dataset, longer N keeps
//! helping (more real history enters the window); the best alpha is not
//! very sensitive to N.

use slime4rec::run_slime;
use slime_repro::{ExperimentCtx, ResultsWriter, Table};

fn main() {
    let ctx = ExperimentCtx::from_env();

    let mut writer = ResultsWriter::new(&ctx, "fig5_seqlen");
    let mut records = Vec::new();

    // Scaled-down analogue of the paper's N in {25, 50, 75, 100}.
    let lens: Vec<usize> = if ctx.quick {
        vec![10]
    } else {
        vec![10, 20, 40]
    };
    let alphas: Vec<f32> = if ctx.quick { vec![0.3] } else { vec![0.3, 1.0] };
    let default_keys = ["beauty", "ml-1m"];
    let keys: Vec<&str> = ctx
        .dataset_keys()
        .into_iter()
        .filter(|k| ctx.datasets.is_some() || default_keys.contains(k))
        .collect();

    for key in keys {
        let ds = ctx.dataset(key);
        let tc = ctx.train_config_for(key, 5);
        let mut table = Table::new(
            format!("Fig. 5(a,b) [{key}]: HR@5 across N x alpha"),
            &["N", "alpha", "HR@5", "NDCG@5"],
        );
        for &n in &lens {
            for &alpha in &alphas {
                let mut cfg = ctx.slime_cfg_for(key, &ds);
                cfg.max_len = n;
                cfg.alpha = alpha;
                let (_, _, m) = run_slime(&ds, &cfg, &tc);
                eprintln!("[{key}] N={n} alpha={alpha}: {}", m.render());
                table.push(vec![
                    n.to_string(),
                    format!("{alpha}"),
                    format!("{:.4}", m.hr(5)),
                    format!("{:.4}", m.ndcg(5)),
                ]);
                records.push((key.to_string(), n, alpha, m.hr(5), m.ndcg(5)));
            }
        }
        println!("{}", table.render());
    }
    writer.add("records", &records);
    let path = writer.finish();
    println!("results written to {}", path.display());
}
