//! Figure 3 — ablation of the contrastive task and the two filter branches:
//! SLIME4Rec vs `w/o C` (no contrastive), `w/o D` (no dynamic filter),
//! `w/o S` (no static filter), with DuoRec as the reference line.
//!
//! Paper shape to reproduce: every variant beats DuoRec, and the full model
//! beats every variant.

use slime4rec::{run_slime, ContrastiveMode};
use slime_baselines::runner::duorec_model;
use slime_repro::{ExperimentCtx, ResultsWriter, Table};

fn main() {
    let ctx = ExperimentCtx::from_env();

    let mut writer = ResultsWriter::new(&ctx, "fig3_ablation");
    let mut records = Vec::new();

    // The paper's Fig. 3 shows Beauty, Sports, and Yelp.
    let default_keys = ["beauty", "sports", "yelp"];
    let keys: Vec<&str> = ctx
        .dataset_keys()
        .into_iter()
        .filter(|k| ctx.datasets.is_some() || default_keys.contains(k))
        .collect();

    for key in keys {
        let ds = ctx.dataset(key);
        let tc = ctx.train_config_for(key, 6);
        let mut table = Table::new(
            format!("Fig. 3 ablation [{key}] (HR@5 / NDCG@5)"),
            &["variant", "HR@5", "NDCG@5"],
        );

        let (_, duo) = duorec_model(&ds, &ctx.spec_for(key), &tc);
        table.push(vec![
            "DuoRec".into(),
            format!("{:.4}", duo.hr(5)),
            format!("{:.4}", duo.ndcg(5)),
        ]);
        records.push((
            key.to_string(),
            "duorec".to_string(),
            duo.hr(5),
            duo.ndcg(5),
        ));

        type Patch = Box<dyn Fn(&mut slime4rec::SlimeConfig)>;
        let variants: [(&str, Patch); 4] = [
            (
                "SLIME4Rec w/oC",
                Box::new(|c: &mut slime4rec::SlimeConfig| c.contrastive = ContrastiveMode::None)
                    as Patch,
            ),
            ("SLIME4Rec w/oD", Box::new(|c| c.use_dfs = false)),
            ("SLIME4Rec w/oS", Box::new(|c| c.use_sfs = false)),
            ("SLIME4Rec", Box::new(|_| {})),
        ];
        for (name, patch) in variants {
            let mut cfg = ctx.slime_cfg_for(key, &ds);
            patch(&mut cfg);
            let (_, _, m) = run_slime(&ds, &cfg, &tc);
            eprintln!("[{key}] {name}: {}", m.render());
            table.push(vec![
                name.into(),
                format!("{:.4}", m.hr(5)),
                format!("{:.4}", m.ndcg(5)),
            ]);
            records.push((key.to_string(), name.to_string(), m.hr(5), m.ndcg(5)));
        }
        println!("{}", table.render());
    }
    println!("paper shape: full > each single-branch/no-CL variant > DuoRec on every dataset.");
    writer.add("records", &records);
    let path = writer.finish();
    println!("results written to {}", path.display());
}
