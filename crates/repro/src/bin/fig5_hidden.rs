//! Figure 5(c,d) — hidden size d sweep.
//!
//! Paper shape to reproduce: performance rises with d, saturates around a
//! mid value, and can dip beyond it (overfitting on sparse data).

use slime4rec::run_slime;
use slime_repro::{ExperimentCtx, ResultsWriter, Table};

fn main() {
    let ctx = ExperimentCtx::from_env();

    let mut writer = ResultsWriter::new(&ctx, "fig5_hidden");
    let mut records = Vec::new();

    // Scaled-down analogue of the paper's d in {16..256}.
    let dims: Vec<usize> = if ctx.quick {
        vec![16]
    } else {
        vec![8, 16, 32, 64, 128]
    };
    let default_keys = ["beauty", "ml-1m"];
    let keys: Vec<&str> = ctx
        .dataset_keys()
        .into_iter()
        .filter(|k| ctx.datasets.is_some() || default_keys.contains(k))
        .collect();

    for key in keys {
        let ds = ctx.dataset(key);
        let tc = ctx.train_config_for(key, 5);
        let mut table = Table::new(
            format!("Fig. 5(c,d) [{key}]: hidden size sweep"),
            &["d", "HR@5", "NDCG@5"],
        );
        for &d in &dims {
            let mut cfg = ctx.slime_cfg_for(key, &ds);
            cfg.hidden = d;
            let (_, _, m) = run_slime(&ds, &cfg, &tc);
            eprintln!("[{key}] d={d}: {}", m.render());
            table.push(vec![
                d.to_string(),
                format!("{:.4}", m.hr(5)),
                format!("{:.4}", m.ndcg(5)),
            ]);
            records.push((key.to_string(), d, m.hr(5), m.ndcg(5)));
        }
        println!("{}", table.render());
    }
    writer.add("records", &records);
    let path = writer.finish();
    println!("results written to {}", path.display());
}
