//! Table III — the static filter's supporting role when the dynamic window
//! is too small to tile the spectrum (`alpha < beta = 1/L`): DFS-only vs
//! DFS+SFS at the paper's `(L, alpha)` grid `{(2, 0.3), (4, 0.2), (8, 0.1)}`.
//!
//! Paper shape to reproduce: adding SFS helps at every depth, most at L=8
//! where the alpha=0.1 windows leave the largest coverage gaps.

use slime4rec::run_slime;
use slime_repro::paper::{dataset_index, TABLE3};
use slime_repro::{ExperimentCtx, ResultsWriter, Table};

fn main() {
    let ctx = ExperimentCtx::from_env();

    let mut writer = ResultsWriter::new(&ctx, "table3_dfs_sfs");
    let mut records = Vec::new();

    let grid: [(usize, f32); 3] = [(2, 0.3), (4, 0.2), (8, 0.1)];
    for key in ctx.dataset_keys() {
        let ds = ctx.dataset(key);
        let tc = ctx.train_config_for(key, 5);
        let di = dataset_index(key).expect("dataset");
        let mut table = Table::new(
            format!("Table III [{key}]: DFS vs DFS+SFS (HR@5 / NDCG@5)"),
            &[
                "L",
                "alpha",
                "SFS",
                "HR@5",
                "NDCG@5",
                "",
                "HR@5(p)",
                "NDCG@5(p)",
            ],
        );
        for &(layers, alpha) in &grid {
            for sfs in [false, true] {
                let mut cfg = ctx.slime_cfg_for(key, &ds);
                cfg.layers = layers;
                cfg.alpha = alpha;
                cfg.use_sfs = sfs;
                let (_, _, m) = run_slime(&ds, &cfg, &tc);
                let paper = TABLE3
                    .iter()
                    .find(|(l, a, s, _)| *l == layers && (*a - alpha).abs() < 1e-6 && *s == sfs)
                    .map(|(_, _, _, rows)| rows[di]);
                eprintln!("[{key}] L={layers} alpha={alpha} sfs={sfs}: {}", m.render());
                table.push(vec![
                    layers.to_string(),
                    format!("{alpha}"),
                    if sfs {
                        format!("beta={:.3}", 1.0 / layers as f32)
                    } else {
                        "off".into()
                    },
                    format!("{:.4}", m.hr(5)),
                    format!("{:.4}", m.ndcg(5)),
                    "|".into(),
                    paper.map(|p| format!("{:.4}", p.0)).unwrap_or_default(),
                    paper.map(|p| format!("{:.4}", p.1)).unwrap_or_default(),
                ]);
                records.push((key.to_string(), layers, alpha, sfs, m.hr(5), m.ndcg(5)));
            }
        }
        println!("{}", table.render());
    }
    writer.add("records", &records);
    let path = writer.finish();
    println!("results written to {}", path.display());
}
