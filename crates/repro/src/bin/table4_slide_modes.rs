//! Table IV — the four slide-mode combinations of the frequency ramp
//! (DFS/SFS each sliding high-to-low `<-` or low-to-high `->`).
//!
//! Paper shape to reproduce: mode 4 (`<-`, `<-`) wins, mode 3 is second,
//! the conflicting-direction modes 1/2 trail.

use slime4rec::{run_slime, SlideMode};
use slime_repro::paper::{dataset_index, TABLE4};
use slime_repro::{ExperimentCtx, ResultsWriter, Table};

fn main() {
    let ctx = ExperimentCtx::from_env();

    let mut writer = ResultsWriter::new(&ctx, "table4_slide_modes");
    let mut records = Vec::new();

    let modes = [
        ("Mode 1 (DFS<-, SFS->)", SlideMode::Mode1),
        ("Mode 2 (DFS->, SFS<-)", SlideMode::Mode2),
        ("Mode 3 (DFS->, SFS->)", SlideMode::Mode3),
        ("Mode 4 (DFS<-, SFS<-)", SlideMode::Mode4),
    ];

    for key in ctx.dataset_keys() {
        let ds = ctx.dataset(key);
        let tc = ctx.train_config_for(key, 5);
        let di = dataset_index(key).expect("dataset");
        let mut table = Table::new(
            format!("Table IV [{key}]: slide modes (HR@5 / NDCG@5)"),
            &["mode", "HR@5", "NDCG@5", "", "HR@5(p)", "NDCG@5(p)"],
        );
        for (mi, (name, mode)) in modes.iter().enumerate() {
            let mut cfg = ctx.slime_cfg_for(key, &ds);
            cfg.slide_mode = *mode;
            let (_, _, m) = run_slime(&ds, &cfg, &tc);
            eprintln!("[{key}] {name}: {}", m.render());
            let p = TABLE4[mi][di];
            table.push(vec![
                name.to_string(),
                format!("{:.4}", m.hr(5)),
                format!("{:.4}", m.ndcg(5)),
                "|".into(),
                format!("{:.4}", p.0),
                format!("{:.4}", p.1),
            ]);
            records.push((key.to_string(), mi + 1, m.hr(5), m.ndcg(5)));
        }
        println!("{}", table.render());
    }
    writer.add("records", &records);
    let path = writer.finish();
    println!("results written to {}", path.display());
}
