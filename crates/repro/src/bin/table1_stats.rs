//! Table I — dataset statistics after preprocessing.
//!
//! Generates the five synthetic stand-in datasets (5-core filtered, like the
//! paper) and prints their statistics next to the paper's originals. The
//! check is *shape*: the relative ordering of avg-length and sparsity across
//! datasets should match (ML-1M-like dense & long; Amazon-like sparse &
//! short).

use slime_repro::paper::TABLE1;
use slime_repro::{ExperimentCtx, ResultsWriter, Table};

fn main() {
    let ctx = ExperimentCtx::from_env();
    let mut table = Table::new(
        "Table I: dataset statistics (synthetic stand-in vs paper original)",
        &[
            "dataset",
            "users",
            "items",
            "avg.len",
            "actions",
            "sparsity%",
            "",
            "users(p)",
            "items(p)",
            "avg.len(p)",
            "actions(p)",
            "sparsity%(p)",
        ],
    );
    let mut records = Vec::new();
    for key in ctx.dataset_keys() {
        let ds = ctx.dataset(key);
        let s = ds.stats();
        let p = TABLE1.iter().find(|(k, ..)| *k == key).expect("paper row");
        table.push(vec![
            key.to_string(),
            s.users.to_string(),
            s.items.to_string(),
            format!("{:.1}", s.avg_length),
            s.actions.to_string(),
            format!("{:.2}", s.sparsity * 100.0),
            "|".into(),
            p.1.to_string(),
            p.2.to_string(),
            format!("{:.1}", p.3),
            p.4.to_string(),
            format!("{:.2}", p.5),
        ]);
        records.push((key.to_string(), s));
    }
    println!("{}", table.render());
    println!(
        "shape check: the ml-1m profile must have the longest sequences and the \
         lowest sparsity, mirroring the paper."
    );

    let mut w = ResultsWriter::new(&ctx, "table1_stats");
    w.add("stats", &records);
    w.add("table", &table);
    let path = w.finish();
    println!("results written to {}", path.display());
}
