//! Table II — overall recommendation performance: every model on every
//! dataset, HR@{5,10} and NDCG@{5,10}, printed next to the paper's numbers
//! with the paper's "Improv." column (SLIME4Rec vs strongest baseline)
//! recomputed on our measurements.

use std::time::Instant;

use slime_baselines::runner::run_baseline;
use slime_metrics::MetricSet;
use slime_repro::harness::improv_pct;
use slime_repro::paper::{dataset_index, model_index, TABLE2, TABLE2_DISPLAY, TABLE2_MODELS};
use slime_repro::{ExperimentCtx, ResultsWriter, Table};

fn main() {
    let ctx = ExperimentCtx::from_env();

    let mut writer = ResultsWriter::new(&ctx, "table2_overall");
    let mut all_results: Vec<(String, String, [f64; 4])> = Vec::new();

    for key in ctx.dataset_keys() {
        let ds = ctx.dataset(key);
        let spec = ctx.spec_for(key);
        let tc_base = ctx.train_config_for(key, 8);
        let di = dataset_index(key).expect("dataset");
        let mut table = Table::new(
            format!(
                "Table II [{key}]: {} users, {} items",
                ds.num_users(),
                ds.num_items()
            ),
            &[
                "model",
                "HR@5",
                "HR@10",
                "NDCG@5",
                "NDCG@10",
                "",
                "HR@5(p)",
                "HR@10(p)",
                "NDCG@5(p)",
                "NDCG@10(p)",
            ],
        );

        let models: Vec<&str> = TABLE2_MODELS
            .iter()
            .copied()
            .filter(|m| {
                ctx.models
                    .as_ref()
                    .map(|ms| ms.iter().any(|x| x == m))
                    .unwrap_or(true)
            })
            .collect();

        let mut measured: Vec<(&str, MetricSet)> = Vec::new();
        for name in &models {
            let tc = tc_base.clone();
            let start = Instant::now();
            let m = run_baseline(name, &ds, &spec, &tc);
            eprintln!(
                "[{key}] {name}: {} ({:.1}s)",
                m.render(),
                start.elapsed().as_secs_f64()
            );
            measured.push((name, m));
        }

        for (name, m) in &measured {
            let mi = model_index(name).expect("model");
            let p = TABLE2[di][mi];
            table.push(vec![
                TABLE2_DISPLAY[mi].to_string(),
                format!("{:.4}", m.hr(5)),
                format!("{:.4}", m.hr(10)),
                format!("{:.4}", m.ndcg(5)),
                format!("{:.4}", m.ndcg(10)),
                "|".into(),
                format!("{:.4}", p.0),
                format!("{:.4}", p.1),
                format!("{:.4}", p.2),
                format!("{:.4}", p.3),
            ]);
            all_results.push((
                key.to_string(),
                name.to_string(),
                [m.hr(5), m.hr(10), m.ndcg(5), m.ndcg(10)],
            ));
        }

        // Improvement of SLIME4Rec over the strongest baseline (by HR@10).
        if let Some(slime) = measured.iter().find(|(n, _)| *n == "slime4rec") {
            if let Some(best) = measured
                .iter()
                .filter(|(n, _)| *n != "slime4rec")
                .max_by(|a, b| a.1.hr(10).partial_cmp(&b.1.hr(10)).unwrap())
            {
                println!(
                    "[{key}] SLIME4Rec vs strongest baseline ({}): HR@10 {} | NDCG@10 {}",
                    best.0,
                    improv_pct(slime.1.hr(10), best.1.hr(10)),
                    improv_pct(slime.1.ndcg(10), best.1.ndcg(10)),
                );
            }
        }
        println!("{}", table.render());
    }

    writer.add("results", &all_results);
    let path = writer.finish();
    println!("results written to {}", path.display());
}
