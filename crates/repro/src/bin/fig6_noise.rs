//! Figure 6 — robustness to synthetic noise: uniform noise of amplitude
//! epsilon injected at every layer input, SLIME4Rec vs DuoRec on a sparse
//! (beauty) and a dense (ml-1m) dataset.
//!
//! Paper shape to reproduce: both degrade as epsilon grows, SLIME4Rec stays
//! above DuoRec throughout, and on the dense dataset SLIME4Rec is notably
//! resistant (the spectrum separates noise from the planted periodicities).

use slime4rec::run_slime;
use slime_baselines::runner::duorec_model;
use slime_repro::{ExperimentCtx, ResultsWriter, Table};

fn main() {
    let ctx = ExperimentCtx::from_env();

    let mut writer = ResultsWriter::new(&ctx, "fig6_noise");
    let mut records = Vec::new();

    let epsilons: Vec<f32> = if ctx.quick {
        vec![0.0, 0.1]
    } else {
        vec![0.0, 0.05, 0.1, 0.2, 0.4]
    };
    let default_keys = ["beauty", "ml-1m"];
    let keys: Vec<&str> = ctx
        .dataset_keys()
        .into_iter()
        .filter(|k| ctx.datasets.is_some() || default_keys.contains(k))
        .collect();

    for key in keys {
        let ds = ctx.dataset(key);
        let tc = ctx.train_config_for(key, 5);
        let mut table = Table::new(
            format!("Fig. 6 [{key}]: layer-noise robustness (HR@5)"),
            &[
                "epsilon",
                "DuoRec HR@5",
                "SLIME4Rec HR@5",
                "DuoRec NDCG@5",
                "SLIME4Rec NDCG@5",
            ],
        );
        for &eps in &epsilons {
            let mut spec = ctx.spec_for(key);
            spec.noise_eps = eps;
            let (_, duo) = duorec_model(&ds, &spec, &tc);
            let mut cfg = ctx.slime_cfg_for(key, &ds);
            cfg.noise_eps = eps;
            let (_, _, ours) = run_slime(&ds, &cfg, &tc);
            eprintln!(
                "[{key}] eps={eps}: duorec {} | ours {}",
                duo.render(),
                ours.render()
            );
            table.push(vec![
                format!("{eps}"),
                format!("{:.4}", duo.hr(5)),
                format!("{:.4}", ours.hr(5)),
                format!("{:.4}", duo.ndcg(5)),
                format!("{:.4}", ours.ndcg(5)),
            ]);
            records.push((key.to_string(), eps, duo.hr(5), ours.hr(5)));
        }
        println!("{}", table.render());
    }
    writer.add("records", &records);
    let path = writer.finish();
    println!("results written to {}", path.display());
}
