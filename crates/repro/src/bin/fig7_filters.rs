//! Figure 7 — visualization of the learned slide filters.
//!
//! Trains SLIME4Rec on the beauty profile with the paper's Fig. 7 setting
//! (slide mode 4, alpha = 0.1, L = 4 so beta = 0.25), then prints an ASCII
//! heat strip of the per-layer dynamic/static filter amplitudes across
//! frequency bins and writes the raw amplitudes as CSV + JSON.
//!
//! Paper shape to reproduce: amplitudes are confined to each layer's band,
//! the bands slide from high to low frequency with depth, and the static
//! filter's bands cover the gaps the small dynamic windows leave
//! (`alpha < 1/L`).

use slime4rec::run_slime;
use slime_repro::{ExperimentCtx, ResultsWriter};

fn strip(values: &[f32]) -> String {
    // Map amplitudes to a 5-level ASCII ramp.
    let max = values.iter().copied().fold(0.0f32, f32::max).max(1e-9);
    values
        .iter()
        .map(|&v| {
            let levels = [' ', '.', ':', '+', '#'];
            let idx = ((v / max) * (levels.len() - 1) as f32).round() as usize;
            levels[idx.min(levels.len() - 1)]
        })
        .collect()
}

fn main() {
    let ctx = ExperimentCtx::from_env();
    let key = "beauty";
    let tc = ctx.train_config_for(key, 5);
    let ds = ctx.dataset(key);

    let mut cfg = ctx.slime_cfg_for(key, &ds);
    cfg.layers = 4;
    cfg.alpha = 0.1; // alpha < beta = 0.25: the regime Fig. 7 visualizes
    let (model, _, test) = run_slime(&ds, &cfg, &tc);
    eprintln!("[{key}] trained (alpha=0.1, L=4): {}", test.render());

    let amps = model.filter_amplitudes();
    let m = cfg.freq_bins();
    println!(
        "Fig. 7: learned filter amplitudes on [{key}] (bins 0..{} = low..high freq)",
        m - 1
    );
    println!(
        "{:<10}{:<12}heat (low -> high frequency)",
        "layer", "branch"
    );
    let mut csv = String::from("layer,branch,bin,amplitude\n");
    let mut dynamic_cover = vec![false; m];
    let mut static_cover = vec![false; m];
    for (l, (dfs, sfs)) in amps.iter().enumerate() {
        println!("{:<10}{:<12}|{}|", format!("L{l}"), "dynamic", strip(dfs));
        println!("{:<10}{:<12}|{}|", "", "static", strip(sfs));
        for (k, &v) in dfs.iter().enumerate() {
            csv.push_str(&format!("{l},dynamic,{k},{v}\n"));
            if v > 0.0 {
                dynamic_cover[k] = true;
            }
        }
        for (k, &v) in sfs.iter().enumerate() {
            csv.push_str(&format!("{l},static,{k},{v}\n"));
            if v > 0.0 {
                static_cover[k] = true;
            }
        }
    }
    let gaps: Vec<usize> = (0..m).filter(|&k| !dynamic_cover[k]).collect();
    let recaptured: Vec<usize> = gaps.iter().copied().filter(|&k| static_cover[k]).collect();
    println!(
        "\nfrequency differential (Fig. 7c): dynamic windows miss {} of {m} bins {gaps:?};\n\
         the static split recaptures {} of them {recaptured:?}.",
        gaps.len(),
        recaptured.len()
    );

    std::fs::create_dir_all(&ctx.out_dir).expect("results dir");
    let csv_path = ctx.out_dir.join("fig7_filters.csv");
    std::fs::write(&csv_path, csv).expect("write csv");
    let mut w = ResultsWriter::new(&ctx, "fig7_filters");
    w.add("amplitudes", &amps);
    w.add("dynamic_gaps", &gaps);
    w.add("recaptured_by_static", &recaptured);
    w.add("test_metrics", test.render());
    let path = w.finish();
    println!(
        "results written to {} and {}",
        path.display(),
        csv_path.display()
    );
}
