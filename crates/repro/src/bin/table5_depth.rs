//! Table V — model depth L in {2, 4, 8}: SLIME4Rec vs DuoRec at matched
//! depths on every dataset.
//!
//! Paper shape to reproduce: SLIME4Rec beats DuoRec at every depth, and —
//! unlike the transformer — keeps (or improves) performance as layers are
//! stacked, because each layer only owns a slice of the spectrum.

use slime4rec::run_slime;
use slime_baselines::runner::duorec_model;
use slime_repro::paper::{dataset_index, TABLE5};
use slime_repro::{ExperimentCtx, ResultsWriter, Table};

fn main() {
    let ctx = ExperimentCtx::from_env();

    let mut writer = ResultsWriter::new(&ctx, "table5_depth");
    let mut records = Vec::new();

    let depths = [2usize, 4, 8];
    for key in ctx.dataset_keys() {
        let ds = ctx.dataset(key);
        let tc = ctx.train_config_for(key, 5);
        let di = dataset_index(key).expect("dataset");
        let mut table = Table::new(
            format!("Table V [{key}]: depth sweep (HR@5 / NDCG@5)"),
            &[
                "L",
                "DuoRec HR@5",
                "DuoRec NDCG@5",
                "Ours HR@5",
                "Ours NDCG@5",
                "",
                "Duo HR@5(p)",
                "Ours HR@5(p)",
            ],
        );
        for (li, &layers) in depths.iter().enumerate() {
            let mut spec = ctx.spec_for(key);
            spec.layers = layers;
            let (_, duo) = duorec_model(&ds, &spec, &tc);
            let mut cfg = ctx.slime_cfg_for(key, &ds);
            cfg.layers = layers;
            // The paper pairs deeper stacks with smaller windows (Table III);
            // follow that here so depth actually divides the spectrum.
            cfg.alpha = (1.0 / layers as f32).max(0.1) + 0.2;
            let (_, _, ours) = run_slime(&ds, &cfg, &tc);
            eprintln!(
                "[{key}] L={layers}: duorec {} | ours {}",
                duo.render(),
                ours.render()
            );
            let p = TABLE5[di][li];
            table.push(vec![
                layers.to_string(),
                format!("{:.4}", duo.hr(5)),
                format!("{:.4}", duo.ndcg(5)),
                format!("{:.4}", ours.hr(5)),
                format!("{:.4}", ours.ndcg(5)),
                "|".into(),
                format!("{:.4}", p.0),
                format!("{:.4}", p.2),
            ]);
            records.push((
                key.to_string(),
                layers,
                duo.hr(5),
                duo.ndcg(5),
                ours.hr(5),
                ours.ndcg(5),
            ));
        }
        println!("{}", table.render());
    }
    writer.add("records", &records);
    let path = writer.finish();
    println!("results written to {}", path.display());
}
