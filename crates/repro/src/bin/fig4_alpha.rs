//! Figure 4 — dynamic filter size ratio alpha sweep, reported as relative
//! improvement over DuoRec (the paper's strongest baseline).
//!
//! Paper shape to reproduce: performance rises from alpha = 0.1, peaks at a
//! dataset-dependent mid value (0.3–0.4 on sparse sets), and declines toward
//! alpha = 1 (the FMLP-like global filter); SLIME4Rec stays above DuoRec for
//! all but the extreme alphas.

use slime4rec::run_slime;
use slime_baselines::runner::duorec_model;
use slime_repro::harness::improv_pct;
use slime_repro::{ExperimentCtx, ResultsWriter, Table};

fn main() {
    let ctx = ExperimentCtx::from_env();

    let mut writer = ResultsWriter::new(&ctx, "fig4_alpha");
    let mut records = Vec::new();

    let alphas: Vec<f32> = if ctx.quick {
        vec![0.2, 1.0]
    } else {
        vec![0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0]
    };
    // Default to the sparse profiles the paper highlights plus the dense one.
    let default_keys = ["beauty", "sports", "ml-1m"];
    let keys: Vec<&str> = ctx
        .dataset_keys()
        .into_iter()
        .filter(|k| ctx.datasets.is_some() || default_keys.contains(k))
        .collect();

    for key in keys {
        let ds = ctx.dataset(key);
        let tc = ctx.train_config_for(key, 5);
        let (_, duo) = duorec_model(&ds, &ctx.spec_for(key), &tc);
        eprintln!("[{key}] DuoRec baseline: {}", duo.render());
        let mut table = Table::new(
            format!(
                "Fig. 4 [{key}]: alpha sweep vs DuoRec (HR@5 {:.4}, NDCG@5 {:.4})",
                duo.hr(5),
                duo.ndcg(5)
            ),
            &[
                "alpha",
                "HR@5",
                "NDCG@5",
                "dHR@5 vs DuoRec",
                "dNDCG@5 vs DuoRec",
            ],
        );
        for &alpha in &alphas {
            let mut cfg = ctx.slime_cfg_for(key, &ds);
            cfg.alpha = alpha;
            let (_, _, m) = run_slime(&ds, &cfg, &tc);
            eprintln!("[{key}] alpha={alpha}: {}", m.render());
            table.push(vec![
                format!("{alpha}"),
                format!("{:.4}", m.hr(5)),
                format!("{:.4}", m.ndcg(5)),
                improv_pct(m.hr(5), duo.hr(5)),
                improv_pct(m.ndcg(5), duo.ndcg(5)),
            ]);
            records.push((
                key.to_string(),
                alpha,
                m.hr(5),
                m.ndcg(5),
                duo.hr(5),
                duo.ndcg(5),
            ));
        }
        println!("{}", table.render());
    }
    println!("paper peaks: beauty ~0.4, clothing ~0.8, sports ~0.3; decline toward alpha=1.");
    writer.add("records", &records);
    let path = writer.finish();
    println!("results written to {}", path.display());
}
