//! Reference numbers transcribed from the paper, printed next to measured
//! results so every binary reports "paper vs ours" on the same screen.
//!
//! Absolute values are *not* expected to match (our datasets are synthetic
//! stand-ins at ~1/20 scale on a CPU); the quantities under test are the
//! orderings and trend shapes, which EXPERIMENTS.md records per experiment.

/// Model names in the paper's Table II column order (our registry names).
pub const TABLE2_MODELS: [&str; 11] = [
    "bprmf",
    "gru4rec",
    "caser",
    "sasrec",
    "bert4rec",
    "fmlp",
    "cl4srec",
    "contrastvae",
    "coserec",
    "duorec",
    "slime4rec",
];

/// Display names matching the paper.
pub const TABLE2_DISPLAY: [&str; 11] = [
    "BPR-MF",
    "GRU4Rec",
    "Caser",
    "SASRec",
    "BERT4Rec",
    "FMLP-Rec",
    "CL4SRec",
    "ContrastVAE",
    "CoSeRec",
    "DuoRec",
    "SLIME4Rec",
];

/// Dataset keys in Table order.
pub const DATASETS: [&str; 5] = ["beauty", "clothing", "sports", "ml-1m", "yelp"];

/// Paper Table I statistics: `(users, items, avg_length, actions, sparsity%)`.
pub const TABLE1: [(&str, usize, usize, f64, usize, f64); 5] = [
    ("beauty", 22_363, 12_101, 8.9, 198_502, 99.93),
    ("clothing", 39_387, 23_033, 7.1, 278_677, 99.97),
    ("sports", 35_598, 18_357, 8.3, 296_337, 99.95),
    ("ml-1m", 6_041, 3_417, 165.5, 999_611, 95.16),
    ("yelp", 30_499, 20_068, 10.4, 317_182, 99.95),
];

/// Paper Table II: `[dataset][model] = (HR@5, HR@10, NDCG@5, NDCG@10)`.
///
/// Note: the paper prints BPR-MF's Yelp NDCG@5 as 0.0760, inconsistent with
/// its neighbours (almost certainly a typo for 0.0076); transcribed as
/// printed.
pub const TABLE2: [[(f64, f64, f64, f64); 11]; 5] = [
    // Beauty
    [
        (0.0120, 0.0299, 0.0040, 0.0053),
        (0.0164, 0.0365, 0.0086, 0.0142),
        (0.0259, 0.0418, 0.0127, 0.0253),
        (0.0365, 0.0627, 0.0236, 0.0281),
        (0.0193, 0.0401, 0.0187, 0.0254),
        (0.0398, 0.0632, 0.0258, 0.0333),
        (0.0401, 0.0683, 0.0223, 0.0317),
        (0.0422, 0.0681, 0.0268, 0.0350),
        (0.0537, 0.0752, 0.0361, 0.0430),
        (0.0546, 0.0845, 0.0352, 0.0443),
        (0.0621, 0.0910, 0.0396, 0.0489),
    ],
    // Clothing
    [
        (0.0067, 0.0094, 0.0052, 0.0069),
        (0.0095, 0.0165, 0.0061, 0.0083),
        (0.0108, 0.0174, 0.0067, 0.0098),
        (0.0168, 0.0272, 0.0091, 0.0124),
        (0.0125, 0.0208, 0.0075, 0.0102),
        (0.0126, 0.0206, 0.0082, 0.0107),
        (0.0168, 0.0266, 0.0090, 0.0121),
        (0.0161, 0.0247, 0.0105, 0.0133),
        (0.0175, 0.0279, 0.0095, 0.0131),
        (0.0193, 0.0302, 0.0113, 0.0148),
        (0.0225, 0.0343, 0.0126, 0.0164),
    ],
    // Sports
    [
        (0.0092, 0.0188, 0.0040, 0.0051),
        (0.0137, 0.0274, 0.0096, 0.0137),
        (0.0139, 0.0231, 0.0085, 0.0126),
        (0.0218, 0.0336, 0.0127, 0.0169),
        (0.0176, 0.0326, 0.0105, 0.0153),
        (0.0218, 0.0344, 0.0144, 0.0185),
        (0.0227, 0.0374, 0.0129, 0.0197),
        (0.0225, 0.0366, 0.0151, 0.0184),
        (0.0287, 0.0437, 0.0196, 0.0242),
        (0.0326, 0.0498, 0.0208, 0.0262),
        (0.0373, 0.0565, 0.0243, 0.0305),
    ],
    // ML-1M
    [
        (0.0078, 0.0162, 0.0052, 0.0079),
        (0.0763, 0.1658, 0.0385, 0.0671),
        (0.0816, 0.1593, 0.0372, 0.0624),
        (0.1087, 0.1904, 0.0638, 0.0910),
        (0.0733, 0.1323, 0.0432, 0.0619),
        (0.1356, 0.2118, 0.0870, 0.1113),
        (0.1147, 0.1975, 0.0662, 0.0928),
        (0.1406, 0.2220, 0.0895, 0.1157),
        (0.1262, 0.2212, 0.0761, 0.1021),
        (0.2038, 0.2946, 0.1390, 0.1680),
        (0.2237, 0.3156, 0.1567, 0.1864),
    ],
    // Yelp
    [
        (0.0127, 0.0245, 0.0760, 0.0119),
        (0.0152, 0.0263, 0.0104, 0.0137),
        (0.0156, 0.0252, 0.0096, 0.0129),
        (0.0161, 0.0265, 0.0102, 0.0134),
        (0.0186, 0.0291, 0.0118, 0.0171),
        (0.0179, 0.0304, 0.0113, 0.0153),
        (0.0216, 0.0352, 0.0130, 0.0185),
        (0.0177, 0.0294, 0.0113, 0.0147),
        (0.0241, 0.0395, 0.0151, 0.0205),
        (0.0441, 0.0631, 0.0325, 0.0386),
        (0.0516, 0.0766, 0.0359, 0.0439),
    ],
];

/// Table II index of a registry model name.
pub fn model_index(name: &str) -> Option<usize> {
    TABLE2_MODELS.iter().position(|&m| m == name)
}

/// Table II index of a dataset key.
pub fn dataset_index(key: &str) -> Option<usize> {
    DATASETS.iter().position(|&d| d == key)
}

/// Paper Table IV: slide modes, `[mode][dataset] = (HR@5, NDCG@5)`.
pub const TABLE4: [[(f64, f64); 5]; 4] = [
    // Mode 1: DFS <-, SFS ->
    [
        (0.0577, 0.0371),
        (0.0216, 0.0120),
        (0.0360, 0.0239),
        (0.2086, 0.1432),
        (0.0486, 0.0343),
    ],
    // Mode 2: DFS ->, SFS <-
    [
        (0.0563, 0.0360),
        (0.0214, 0.0121),
        (0.0361, 0.0224),
        (0.2104, 0.1461),
        (0.0489, 0.0346),
    ],
    // Mode 3: DFS ->, SFS ->
    [
        (0.0589, 0.0371),
        (0.0220, 0.0123),
        (0.0367, 0.0233),
        (0.2108, 0.1455),
        (0.0493, 0.0343),
    ],
    // Mode 4: DFS <-, SFS <- (best)
    [
        (0.0621, 0.0396),
        (0.0225, 0.0126),
        (0.0373, 0.0243),
        (0.2237, 0.1567),
        (0.0516, 0.0359),
    ],
];

/// Paper Table III: `(layers, alpha, sfs_on, [per-dataset (HR@5, NDCG@5)])`.
#[allow(clippy::type_complexity)]
pub const TABLE3: [(usize, f32, bool, [(f64, f64); 5]); 6] = [
    (
        2,
        0.3,
        false,
        [
            (0.0588, 0.0360),
            (0.0209, 0.0116),
            (0.0357, 0.0227),
            (0.1876, 0.1287),
            (0.0449, 0.0317),
        ],
    ),
    (
        2,
        0.3,
        true,
        [
            (0.0604, 0.0370),
            (0.0210, 0.0118),
            (0.0358, 0.0228),
            (0.1907, 0.1312),
            (0.0454, 0.0320),
        ],
    ),
    (
        4,
        0.2,
        false,
        [
            (0.0594, 0.0373),
            (0.0213, 0.0121),
            (0.0367, 0.0234),
            (0.1874, 0.1273),
            (0.0467, 0.0327),
        ],
    ),
    (
        4,
        0.2,
        true,
        [
            (0.0599, 0.0376),
            (0.0217, 0.0124),
            (0.0369, 0.0235),
            (0.1879, 0.1274),
            (0.0481, 0.0337),
        ],
    ),
    (
        8,
        0.1,
        false,
        [
            (0.0570, 0.0371),
            (0.0203, 0.0120),
            (0.0365, 0.0232),
            (0.1945, 0.1357),
            (0.0452, 0.0312),
        ],
    ),
    (
        8,
        0.1,
        true,
        [
            (0.0591, 0.0379),
            (0.0211, 0.0128),
            (0.0369, 0.0239),
            (0.2020, 0.1384),
            (0.0460, 0.0327),
        ],
    ),
];

/// Paper Table V: `[dataset][L-index] = (duorec HR@5, duorec NDCG@5, ours HR@5, ours NDCG@5)`
/// with `L in {2, 4, 8}`.
pub const TABLE5: [[(f64, f64, f64, f64); 3]; 5] = [
    // Beauty
    [
        (0.0546, 0.0352, 0.0604, 0.0370),
        (0.0551, 0.0344, 0.0607, 0.0379),
        (0.0565, 0.0353, 0.0621, 0.0396),
    ],
    // Clothing
    [
        (0.0193, 0.0113, 0.0225, 0.0126),
        (0.0197, 0.0113, 0.0221, 0.0126),
        (0.0197, 0.0116, 0.0221, 0.0128),
    ],
    // Sports
    [
        (0.0326, 0.0208, 0.0364, 0.0230),
        (0.0315, 0.0204, 0.0373, 0.0243),
        (0.0299, 0.0197, 0.0365, 0.0239),
    ],
    // ML-1M
    [
        (0.2038, 0.1390, 0.2139, 0.1457),
        (0.2065, 0.1423, 0.2202, 0.1515),
        (0.2164, 0.1501, 0.2262, 0.1559),
    ],
    // Yelp
    [
        (0.0441, 0.0325, 0.0516, 0.0359),
        (0.0454, 0.0333, 0.0502, 0.0348),
        (0.0438, 0.0318, 0.0493, 0.0336),
    ],
];

/// Fig. 4: the paper's best alpha per sparse Amazon dataset.
pub const FIG4_BEST_ALPHA: [(&str, f32); 3] = [("beauty", 0.4), ("clothing", 0.8), ("sports", 0.3)];

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops over paired const tables
mod tests {
    use super::*;

    #[test]
    fn table2_claims_slime_wins_everywhere() {
        // Sanity on the transcription: SLIME4Rec (last column) leads every
        // dataset on HR@5/HR@10/NDCG@10 (NDCG@5 on Yelp is distorted by the
        // paper's BPR-MF typo, so skip metric 2 there).
        for (d, rows) in TABLE2.iter().enumerate() {
            let slime = rows[10];
            for (m, r) in rows[..10].iter().enumerate() {
                assert!(slime.0 > r.0, "HR@5 d{d} m{m}");
                assert!(slime.1 > r.1, "HR@10 d{d} m{m}");
                assert!(slime.3 > r.3, "NDCG@10 d{d} m{m}");
            }
        }
    }

    #[test]
    fn table4_mode4_is_best() {
        for d in 0..5 {
            for mode in 0..3 {
                assert!(TABLE4[3][d].0 >= TABLE4[mode][d].0, "HR@5 d{d} mode{mode}");
                assert!(
                    TABLE4[3][d].1 >= TABLE4[mode][d].1,
                    "NDCG@5 d{d} mode{mode}"
                );
            }
        }
    }

    #[test]
    fn table3_sfs_always_helps() {
        for pair in TABLE3.chunks(2) {
            let (off, on) = (&pair[0], &pair[1]);
            assert_eq!(off.0, on.0, "layer pairing");
            for d in 0..5 {
                assert!(on.3[d].0 >= off.3[d].0, "HR@5 L={} d{d}", off.0);
            }
        }
    }

    #[test]
    fn table5_ours_beats_duorec_at_every_depth() {
        for rows in &TABLE5 {
            for &(dh, dn, oh, on) in rows {
                assert!(oh > dh && on > dn);
            }
        }
    }

    #[test]
    fn indices_resolve() {
        assert_eq!(model_index("slime4rec"), Some(10));
        assert_eq!(model_index("bprmf"), Some(0));
        assert_eq!(dataset_index("yelp"), Some(4));
        assert_eq!(model_index("nope"), None);
    }
}
