//! # slime-repro
//!
//! The reproduction harness: one binary per table/figure of the SLIME4Rec
//! paper (see DESIGN.md §4 for the index). This library holds the shared
//! experiment context, the embedded paper-reference numbers, and table
//! rendering/serialization helpers.
//!
//! Every binary honours these environment variables:
//!
//! * `SLIME_SCALE` — multiplies synthetic dataset sizes (default 1.0).
//! * `SLIME_EPOCHS` — overrides the per-experiment epoch default.
//! * `SLIME_QUICK=1` — tiny datasets + 1 epoch (CI smoke mode).
//! * `SLIME_DATASETS` — comma list restricting dataset profiles.
//! * `SLIME_MODELS` — comma list restricting models (table2 only).
//! * `SLIME_OUT` — results directory (default `results/`).

pub mod harness;
pub mod paper;

pub use harness::{ExperimentCtx, ResultsWriter, Table};
