//! Shared experiment infrastructure: environment-driven scaling, dataset
//! construction, per-dataset default hyper-parameters, ASCII table
//! rendering, and JSON result persistence.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use slime4rec::{SlimeConfig, TrainConfig};
use slime_baselines::runner::BaselineSpec;
use slime_data::synthetic::{generate, profile, PROFILE_KEYS};
use slime_data::SeqDataset;
use slime_json::{ToJson, Value};
use slime_metrics::MetricSet;

/// Experiment context resolved from the environment.
#[derive(Debug, Clone)]
pub struct ExperimentCtx {
    /// Dataset size multiplier.
    pub scale: f64,
    /// Epoch override (`None` = per-experiment default).
    pub epochs: Option<usize>,
    /// Quick smoke mode.
    pub quick: bool,
    /// Dataset subset filter.
    pub datasets: Option<Vec<String>>,
    /// Model subset filter.
    pub models: Option<Vec<String>>,
    /// Output directory for JSON results.
    pub out_dir: PathBuf,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentCtx {
    /// Read `SLIME_*` environment variables.
    pub fn from_env() -> Self {
        let get = |k: &str| std::env::var(k).ok();
        let quick = get("SLIME_QUICK").map(|v| v == "1").unwrap_or(false);
        ExperimentCtx {
            scale: get("SLIME_SCALE")
                .and_then(|v| v.parse().ok())
                .unwrap_or(if quick { 0.2 } else { 1.0 }),
            epochs: get("SLIME_EPOCHS").and_then(|v| v.parse().ok()),
            quick,
            datasets: get("SLIME_DATASETS")
                .map(|v| v.split(',').map(|s| s.trim().to_string()).collect()),
            models: get("SLIME_MODELS")
                .map(|v| v.split(',').map(|s| s.trim().to_string()).collect()),
            out_dir: get("SLIME_OUT")
                .map(PathBuf::from)
                .unwrap_or_else(|| "results".into()),
            seed: get("SLIME_SEED").and_then(|v| v.parse().ok()).unwrap_or(17),
        }
    }

    /// Dataset keys active under the filter, in Table I order.
    pub fn dataset_keys(&self) -> Vec<&'static str> {
        PROFILE_KEYS
            .iter()
            .copied()
            .filter(|k| {
                self.datasets
                    .as_ref()
                    .map(|ds| ds.iter().any(|d| d == k))
                    .unwrap_or(true)
            })
            .collect()
    }

    /// Generate (cached-by-seed deterministic) the synthetic dataset for a
    /// profile key.
    pub fn dataset(&self, key: &str) -> SeqDataset {
        generate(&profile(key, self.scale), self.seed)
    }

    /// Default epochs for an experiment (clamped to 1 in quick mode).
    pub fn epochs_or(&self, default: usize) -> usize {
        if self.quick {
            1
        } else {
            self.epochs.unwrap_or(default)
        }
    }

    /// Per-dataset max sequence length: the dense ML-1M-like profile earns
    /// a longer window, mirroring the paper's N search.
    pub fn max_len_for(&self, key: &str) -> usize {
        if key == "ml-1m" {
            40
        } else {
            20
        }
    }

    /// Default training configuration for an experiment.
    pub fn train_config(&self, default_epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs_or(default_epochs),
            batch_size: 128,
            lr: 1e-3,
            valid_every: 0,
            patience: 0,
            cutoffs: vec![5, 10],
            seed: self.seed,
            verbose: false,
            example_stride: 1,
            clip_norm: None,
        }
    }

    /// Per-dataset training configuration: the dense ML-1M-like profile
    /// thins its ~80 prefixes per user to every 4th, which cuts its wall
    /// clock ~4x with negligible metric movement.
    pub fn train_config_for(&self, key: &str, default_epochs: usize) -> TrainConfig {
        TrainConfig {
            example_stride: if key == "ml-1m" { 4 } else { 1 },
            ..self.train_config(default_epochs)
        }
    }

    /// Default baseline spec for a dataset.
    pub fn spec_for(&self, key: &str) -> BaselineSpec {
        let mut spec = BaselineSpec::small();
        spec.max_len = self.max_len_for(key);
        spec.seed = self.seed;
        spec
    }

    /// Default SLIME4Rec config for a dataset.
    pub fn slime_cfg_for(&self, key: &str, ds: &SeqDataset) -> SlimeConfig {
        self.spec_for(key).slime_cfg(ds)
    }
}

/// A printable, serializable experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl ToJson for Table {
    fn to_json(&self) -> Value {
        slime_json::obj([
            ("title", self.title.to_json()),
            ("headers", self.headers.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = format!("== {} ==\n", self.title);
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Serializes experiment outputs under the context's results directory.
pub struct ResultsWriter {
    dir: PathBuf,
    payload: BTreeMap<String, Value>,
    name: String,
    start: Instant,
}

impl ResultsWriter {
    /// Start a result record for `experiment_name`.
    pub fn new(ctx: &ExperimentCtx, experiment_name: &str) -> Self {
        ResultsWriter {
            dir: ctx.out_dir.clone(),
            payload: BTreeMap::new(),
            name: experiment_name.to_string(),
            start: Instant::now(),
        }
    }

    /// Attach a serializable value under `key`.
    pub fn add(&mut self, key: &str, value: impl ToJson) {
        self.payload.insert(key.to_string(), value.to_json());
    }

    /// Write `<out>/<name>.json`, returning the path.
    pub fn finish(mut self) -> PathBuf {
        self.payload.insert(
            "elapsed_seconds".into(),
            self.start.elapsed().as_secs_f64().to_json(),
        );
        std::fs::create_dir_all(&self.dir).expect("create results dir");
        let path = self.dir.join(format!("{}.json", self.name));
        std::fs::write(&path, slime_json::to_string_pretty(&self.payload)).expect("write results");
        path
    }
}

/// Format a metric pair the way the paper's tables do.
pub fn fmt_metric(m: &MetricSet, k: usize) -> (String, String) {
    (format!("{:.4}", m.hr(k)), format!("{:.4}", m.ndcg(k)))
}

/// Relative improvement in percent (the paper's "Improv." column).
pub fn improv_pct(ours: f64, theirs: f64) -> String {
    if theirs <= 0.0 {
        return "n/a".into();
    }
    format!("{:+.2}%", (ours - theirs) / theirs * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_alignment() {
        let mut t = Table::new("demo", &["model", "HR@5"]);
        t.push(vec!["slime4rec".into(), "0.0621".into()]);
        t.push(vec!["mf".into(), "0.0120".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("slime4rec  0.0621"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn improv_formatting() {
        assert_eq!(improv_pct(0.11, 0.10), "+10.00%");
        assert_eq!(improv_pct(0.09, 0.10), "-10.00%");
        assert_eq!(improv_pct(0.09, 0.0), "n/a");
    }

    #[test]
    fn ctx_defaults() {
        // Note: reads real env; defaults assumed when unset in test env.
        let ctx = ExperimentCtx::from_env();
        assert!(ctx.scale > 0.0);
        assert!(!ctx.dataset_keys().is_empty());
        assert_eq!(ctx.max_len_for("ml-1m"), 40);
        assert_eq!(ctx.max_len_for("beauty"), 20);
    }
}
