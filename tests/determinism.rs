//! Determinism: identical seeds produce identical datasets, identical
//! training trajectories, and identical metrics — the property every
//! experiment binary relies on for reproducibility.

use slime4rec::{run_slime, SlimeConfig, TrainConfig};
use slime_baselines::runner::{run_baseline, BaselineSpec};
use slime_data::synthetic::{generate, profile};

fn tiny_tc(seed: u64) -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 64,
        seed,
        ..TrainConfig::default()
    }
}

#[test]
fn dataset_generation_is_seed_deterministic() {
    let a = generate(&profile("sports", 0.15), 99);
    let b = generate(&profile("sports", 0.15), 99);
    assert_eq!(a.sequences(), b.sequences());
    assert_eq!(a.num_items(), b.num_items());
}

#[test]
fn slime_training_is_seed_deterministic() {
    let ds = generate(&profile("beauty", 0.15), 3);
    let mut cfg = SlimeConfig::small(ds.num_items());
    cfg.hidden = 16;
    cfg.max_len = 10;
    let (_, rep1, m1) = run_slime(&ds, &cfg, &tiny_tc(5));
    let (_, rep2, m2) = run_slime(&ds, &cfg, &tiny_tc(5));
    assert_eq!(rep1.epoch_losses, rep2.epoch_losses);
    assert_eq!(m1.hr(10), m2.hr(10));
    assert_eq!(m1.ndcg(5), m2.ndcg(5));
}

#[test]
fn different_seeds_change_the_trajectory() {
    let ds = generate(&profile("beauty", 0.15), 3);
    let mut cfg = SlimeConfig::small(ds.num_items());
    cfg.hidden = 16;
    cfg.max_len = 10;
    let (_, rep1, _) = run_slime(&ds, &cfg, &tiny_tc(5));
    let (_, rep2, _) = run_slime(&ds, &cfg, &tiny_tc(6));
    assert_ne!(rep1.epoch_losses, rep2.epoch_losses);
}

#[test]
fn baseline_runner_is_deterministic() {
    let ds = generate(&profile("beauty", 0.15), 3);
    let mut spec = BaselineSpec::small();
    spec.hidden = 16;
    spec.max_len = 10;
    spec.layers = 1;
    for name in ["sasrec", "duorec"] {
        let a = run_baseline(name, &ds, &spec, &tiny_tc(7));
        let b = run_baseline(name, &ds, &spec, &tiny_tc(7));
        assert_eq!(a.hr(10), b.hr(10), "{name}");
        assert_eq!(a.ndcg(10), b.ndcg(10), "{name}");
    }
}
