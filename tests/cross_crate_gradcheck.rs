//! Cross-crate gradient checks: finite-difference validation of full model
//! losses (not just individual ops) — SLIME4Rec's joint objective and the
//! attention/GRU baselines, end to end through every crate boundary.

use slime4rec::contrastive::info_nce;
use slime4rec::{ContrastiveMode, NextItemModel, Slime4Rec, SlimeConfig};
use slime_baselines::{EncoderConfig, Gru4Rec, TransformerRec};
use slime_nn::{Module, ParamCollector, TrainContext};
use slime_tensor::gradcheck::check_gradient;
use slime_tensor::{ops, Tensor};

const TOL: f32 = 8e-2; // full-model f32 chains accumulate more error

// Central differences carry O(eps^2 * f''') truncation error. The
// contrastive objective l2-normalizes near-zero init-scale representations,
// so its third derivatives are huge; 3e-3 steps leave ~13% truncation error
// on the embedding table while 1e-3 brings it under 2%. Round-off (which
// grows as 1/eps) stays negligible at this loss scale.
const FD_EPS: f32 = 1e-3;

fn check_params(params: &[(String, Tensor)], mut f: impl FnMut() -> Tensor, picks: &[&str]) {
    for (name, t) in params {
        if !picks.iter().any(|p| name.contains(p)) {
            continue;
        }
        let report = check_gradient(t, &mut f, FD_EPS);
        assert!(
            report.max_rel_diff < TOL,
            "{name}: rel diff {} (abs {})",
            report.max_rel_diff,
            report.max_abs_diff
        );
    }
}

#[test]
fn slime4rec_recommendation_loss_gradients() {
    let mut cfg = SlimeConfig::small(8);
    cfg.hidden = 4;
    cfg.max_len = 6;
    cfg.layers = 2;
    cfg.alpha = 0.5;
    cfg.dropout_emb = 0.0;
    cfg.dropout_block = 0.0;
    cfg.contrastive = ContrastiveMode::None;
    let model = Slime4Rec::new(cfg);
    let inputs = vec![0, 1, 2, 3, 4, 5, 0, 0, 6, 7, 8, 1];
    let targets = [2usize, 5];
    let f = || {
        let mut ctx = TrainContext::eval(); // deterministic for FD
        let repr = model.user_repr(&inputs, 2, &mut ctx);
        ops::cross_entropy(&model.score_all(&repr), &targets)
    };
    let mut pc = ParamCollector::new();
    model.collect(&mut pc);
    // Spot-check the paper-specific parameters: both filters (re+im), the
    // embeddings, and a layer norm.
    check_params(
        pc.entries(),
        f,
        &["wd_re", "wd_im", "ws_im", "item_emb", "block0.ln_out.gamma"],
    );
}

#[test]
fn slime4rec_contrastive_loss_gradients() {
    let mut cfg = SlimeConfig::small(8);
    cfg.hidden = 4;
    cfg.max_len = 6;
    cfg.layers = 1;
    cfg.dropout_emb = 0.0;
    cfg.dropout_block = 0.0;
    let model = Slime4Rec::new(cfg);
    let a = vec![0, 1, 2, 3, 4, 5, 0, 0, 6, 7, 8, 1];
    let b = vec![0, 2, 3, 1, 5, 4, 0, 0, 8, 6, 7, 2];
    let f = || {
        let mut ctx = TrainContext::eval();
        let h1 = model.user_repr(&a, 2, &mut ctx);
        let h2 = model.user_repr(&b, 2, &mut ctx);
        info_nce(&h1, &h2, 0.7)
    };
    let mut pc = ParamCollector::new();
    model.collect(&mut pc);
    check_params(pc.entries(), f, &["wd_re", "ws_re", "item_emb"]);
}

#[test]
fn sasrec_attention_gradients() {
    let cfg = EncoderConfig {
        num_items: 8,
        hidden: 4,
        max_len: 5,
        layers: 1,
        heads: 2,
        dropout: 0.0,
        noise_eps: 0.0,
        seed: 3,
    };
    let model = TransformerRec::sasrec(cfg);
    let inputs = vec![0, 1, 2, 3, 4, 0, 5, 6, 7, 8];
    let targets = [3usize, 1];
    let f = || {
        let mut ctx = TrainContext::eval();
        let repr = model.user_repr(&inputs, 2, &mut ctx);
        ops::cross_entropy(&model.score_all(&repr), &targets)
    };
    let mut pc = ParamCollector::new();
    model.collect(&mut pc);
    check_params(pc.entries(), f, &["wq.weight", "wv.weight", "item_emb"]);
}

#[test]
fn gru4rec_bptt_gradients() {
    let model = Gru4Rec::new(6, 4, 5, 0.0, 4);
    let inputs = vec![0, 1, 2, 3, 4, 0, 5, 6, 1, 2];
    let targets = [5usize, 3];
    let f = || {
        let mut ctx = TrainContext::eval();
        let repr = model.user_repr(&inputs, 2, &mut ctx);
        ops::cross_entropy(&model.score_all(&repr), &targets)
    };
    let mut pc = ParamCollector::new();
    model.collect(&mut pc);
    check_params(pc.entries(), f, &["gru.wz", "gru.uh", "item_emb"]);
}
