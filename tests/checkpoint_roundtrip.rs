//! Checkpoint round-trips across crate boundaries: a trained model saved to
//! disk and loaded into a fresh instance must score identically.

use slime4rec::{run_slime, NextItemModel, Slime4Rec, SlimeConfig, TrainConfig};
use slime_baselines::{EncoderConfig, TransformerRec};
use slime_data::batch::pad_truncate;
use slime_data::synthetic::{generate, profile};
use slime_data::Split;
use slime_nn::{Module, TrainContext};
use slime_tensor::StateDict;

#[test]
fn trained_slime_survives_disk_roundtrip() {
    let ds = generate(&profile("beauty", 0.15), 9);
    let mut cfg = SlimeConfig::small(ds.num_items());
    cfg.hidden = 16;
    cfg.max_len = 10;
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 64,
        ..TrainConfig::default()
    };
    let (model, _, _) = run_slime(&ds, &cfg, &tc);

    let dir = std::env::temp_dir().join("slime_ckpt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("slime.json");
    model.state_dict().save(&path).unwrap();

    let loaded = Slime4Rec::new(cfg.clone());
    loaded.load_state_dict(&StateDict::load(&path).unwrap());

    let (hist, _) = ds.eval_example(0, Split::Test).unwrap();
    let input = pad_truncate(hist, cfg.max_len);
    let mut ctx = TrainContext::eval();
    let a = model
        .score_all(&model.user_repr(&input, 1, &mut ctx))
        .value();
    let b = loaded
        .score_all(&loaded.user_repr(&input, 1, &mut ctx))
        .value();
    assert_eq!(a.data(), b.data());
    std::fs::remove_file(path).ok();
}

#[test]
fn state_dict_names_are_stable_and_complete() {
    let mut cfg = SlimeConfig::small(5);
    cfg.hidden = 8;
    cfg.max_len = 6;
    cfg.layers = 2;
    let model = Slime4Rec::new(cfg);
    let sd = model.state_dict();
    let names: Vec<&str> = sd.names().collect();
    // Every block contributes its filters + norms + FFN.
    for l in 0..2 {
        for suffix in ["wd_re", "wd_im", "ws_re", "ws_im"] {
            assert!(
                names.contains(&format!("block{l}.{suffix}").as_str()),
                "missing block{l}.{suffix} in {names:?}"
            );
        }
    }
    assert!(names.contains(&"item_emb.weight"));
    assert!(names.contains(&"pos_emb.weight"));
    // Count matches the module's own accounting.
    let total: usize = names
        .iter()
        .map(|n| {
            let rec = sd.get(n).unwrap();
            rec.data.len()
        })
        .sum();
    assert_eq!(total, model.num_parameters());
}

#[test]
fn mismatched_checkpoint_is_rejected() {
    let mut cfg = SlimeConfig::small(5);
    cfg.hidden = 8;
    cfg.max_len = 6;
    let model = Slime4Rec::new(cfg.clone());
    let sd = model.state_dict();
    // A deeper model must refuse this checkpoint (missing block1 params).
    let mut deeper = cfg;
    deeper.layers = 4;
    let other = Slime4Rec::new(deeper);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        other.load_state_dict(&sd);
    }));
    assert!(result.is_err(), "loading must panic on missing parameters");
}

#[test]
fn transformer_state_dict_roundtrip_in_memory() {
    let cfg = EncoderConfig {
        num_items: 10,
        hidden: 8,
        max_len: 6,
        layers: 1,
        heads: 2,
        dropout: 0.0,
        noise_eps: 0.0,
        seed: 5,
    };
    let a = TransformerRec::sasrec(cfg.clone());
    let b = TransformerRec::sasrec(EncoderConfig { seed: 99, ..cfg });
    let inputs = vec![1, 2, 3, 4, 5, 6];
    let mut ctx = TrainContext::eval();
    let before_a = a.score_all(&a.user_repr(&inputs, 1, &mut ctx)).value();
    b.load_state_dict(&a.state_dict());
    let after_b = b.score_all(&b.user_repr(&inputs, 1, &mut ctx)).value();
    assert_eq!(before_a.data(), after_b.data());
}
