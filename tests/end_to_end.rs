//! End-to-end integration: train each model family on a tiny planted
//! dataset and verify it learns — i.e. beats a popularity heuristic the
//! way a real recommender must.

use slime4rec::{evaluate_split, run_slime, ContrastiveMode, SlimeConfig, TrainConfig};
use slime_baselines::runner::{run_baseline, BaselineSpec};
use slime_data::synthetic::{generate_with_core, SyntheticConfig};
use slime_data::{SeqDataset, Split};
use slime_metrics::{MetricAccumulator, MetricSet};

fn planted_ds(seed: u64) -> SeqDataset {
    // Strongly periodic users: models that exploit the structure should do
    // far better than popularity.
    let cfg = SyntheticConfig {
        name: "e2e".into(),
        users: 220,
        clusters: 8,
        items_per_cluster: 10,
        noise_items: 10,
        min_len: 12,
        max_len: 20,
        low_period: 5,
        high_cycle: 2,
        p_high: 0.60,
        p_noise: 0.10,
    };
    generate_with_core(&cfg, seed, 0)
}

/// HR/NDCG of always recommending the globally most popular items.
fn popularity_baseline(ds: &SeqDataset) -> MetricSet {
    let mut counts = vec![0f32; ds.num_items() + 1];
    for u in 0..ds.num_users() {
        for &v in ds.train_seq(u) {
            counts[v] += 1.0;
        }
    }
    let mut acc = MetricAccumulator::new(&[5, 10]);
    for u in 0..ds.num_users() {
        if let Some((_, target)) = ds.eval_example(u, Split::Test) {
            let ts = counts[target];
            let mut rank = 0;
            for (i, &c) in counts.iter().enumerate().skip(1) {
                if i != target && (c > ts || (c == ts && i < target)) {
                    rank += 1;
                }
            }
            acc.add_rank(rank);
        }
    }
    acc.finish()
}

fn tiny_tc(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 64,
        // Keep the best-validation checkpoint (the paper's protocol) rather
        // than whatever the final epoch happens to be.
        valid_every: 2,
        // The paper's lr (1e-3) is tuned for tens of thousands of steps on
        // real datasets; on this ~550-step budget the loss curves show clear
        // undertraining at 1e-3, while 2e-3 converges within the budget.
        lr: 2e-3,
        ..TrainConfig::default()
    }
}

fn tiny_spec() -> BaselineSpec {
    let mut spec = BaselineSpec::small();
    spec.hidden = 16;
    spec.max_len = 12;
    spec.layers = 2;
    spec
}

#[test]
fn slime4rec_beats_popularity_on_planted_structure() {
    let ds = planted_ds(21);
    let pop = popularity_baseline(&ds);
    let mut cfg = SlimeConfig::small(ds.num_items());
    cfg.hidden = 16;
    cfg.max_len = 12;
    let (_, report, test) = run_slime(&ds, &cfg, &tiny_tc(10));
    assert!(
        report.epoch_losses.last().unwrap() < &report.epoch_losses[0],
        "loss must decrease: {:?}",
        report.epoch_losses
    );
    assert!(
        test.ndcg(10) > 1.2 * pop.ndcg(10),
        "slime {} vs popularity {}",
        test.ndcg(10),
        pop.ndcg(10)
    );
}

#[test]
fn sequential_models_beat_popularity() {
    let ds = planted_ds(22);
    let pop = popularity_baseline(&ds);
    let spec = tiny_spec();
    // 8 epochs, not 5: the GRU's BPTT needs the extra steps to pull ahead
    // of popularity on this tiny budget (the transformers clear it by 5).
    for name in ["gru4rec", "sasrec", "fmlp"] {
        let m = run_baseline(name, &ds, &spec, &tiny_tc(8));
        assert!(
            m.ndcg(10) > pop.ndcg(10),
            "{name}: {} !> popularity {}",
            m.ndcg(10),
            pop.ndcg(10)
        );
    }
}

#[test]
fn contrastive_slime_beats_its_ablation_on_average_loss() {
    // The contrastive term should not break optimization: both configs must
    // reach a sane loss, and the full model must at least match w/oC on the
    // planted data's test metric within a generous band.
    let ds = planted_ds(23);
    let tc = tiny_tc(4);
    let mut full = SlimeConfig::small(ds.num_items());
    full.hidden = 16;
    full.max_len = 12;
    let mut ablated = full.clone();
    ablated.contrastive = ContrastiveMode::None;
    let (_, rep_full, m_full) = run_slime(&ds, &full, &tc);
    let (_, rep_abl, m_abl) = run_slime(&ds, &ablated, &tc);
    assert!(rep_full.epoch_losses.iter().all(|l| l.is_finite()));
    assert!(rep_abl.epoch_losses.iter().all(|l| l.is_finite()));
    assert!(
        m_full.ndcg(10) > 0.5 * m_abl.ndcg(10),
        "contrastive training collapsed: {} vs {}",
        m_full.ndcg(10),
        m_abl.ndcg(10)
    );
}

#[test]
fn evaluation_counts_every_eligible_user() {
    let ds = planted_ds(24);
    let mut cfg = SlimeConfig::small(ds.num_items());
    cfg.hidden = 8;
    cfg.max_len = 8;
    let model = slime4rec::Slime4Rec::new(cfg);
    let tc = tiny_tc(1);
    let m = evaluate_split(&model, &ds, Split::Test, &tc);
    let eligible = (0..ds.num_users())
        .filter(|&u| ds.eval_example(u, Split::Test).is_some())
        .count();
    assert_eq!(m.count, eligible);
}
